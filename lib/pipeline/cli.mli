(** Shared cmdliner terms for pipeline configs — the one flag surface every
    subcommand composes instead of re-declaring its own. *)

open Cmdliner

val circuit_conv : Config.circuit_source Arg.conv
val engine_conv : string Arg.conv
(** Validating converters (did-you-mean errors at parse time). *)

val circuit_arg : Config.circuit_source Term.t
val engine_arg : string Term.t
val confidence_arg : float Term.t
val seed_arg : int Term.t
val jobs_arg : int option Term.t
val weights_arg : string option Term.t
val sweeps_arg : int Term.t
val grid_arg : float option Term.t
val dyadic_arg : int option Term.t
val patterns_arg : default:int -> int Term.t
val work_dir_arg : string option Term.t

val opt_passes_conv : string list Arg.conv
(** Comma-separated pass names (did-you-mean errors at parse time). *)

val no_opt_arg : bool Term.t
val opt_passes_arg : string list option Term.t
val opt_rounds_arg : int Term.t

val objective_conv : string Arg.conv
(** Objective spec, validated at parse time (did-you-mean errors). *)

val objective_arg : string option Term.t

val quantize : float option -> int option -> Rt_optprob.Optimize.quantization
(** Combine [--grid]/[--dyadic] into a quantization choice. *)

val config : ?default_patterns:int -> unit -> Config.t Term.t
(** The full shared config term: positional CIRCUIT plus --engine,
    --confidence, --seed, --jobs, --sweeps, --grid, --dyadic, --weights,
    --patterns, --work-dir, --no-opt, --opt-passes, --opt-rounds and
    --objective. *)
