(* One validated configuration record for the whole SORT / NORMALIZE /
   ANALYSIS / PREPARE / MINIMIZE / OPTIMIZE pipeline.  Every entry point
   (bin subcommands, the repro experiment tables, both bench binaries)
   builds one of these instead of hand-plumbing flags into the library. *)

module Detect = Rt_testability.Detect
module Optimize = Rt_optprob.Optimize

type circuit_source =
  | Builtin of string
  | Bench_file of string
  | Inline of { name : string; netlist : Rt_circuit.Netlist.t; digest : string }

type weights_source =
  | Uniform
  | Weights_file of string
  | Weights_vector of float array

type t = {
  circuit : circuit_source;
  engine : string;  (* validated spec, e.g. "cop", "bdd:500000" *)
  confidence : float;
  seed : int;
  jobs : int option;
  block_words : int option;
  sweeps : int;
  alpha : float;
  nf_min : int;
  w_min : float;
  start : float array option;
  start_jitter : float;
  quantize : Optimize.quantization;
  weights : weights_source;
  patterns : int;
  work_dir : string option;
  opt_passes : string list;  (* netlist optimization passes; [] = stage is identity *)
  opt_rounds : int;
  objective : string;  (* validated spec, e.g. "single", "ndetect:2", "twostage:512" *)
}

(* --- did-you-mean ---------------------------------------------------------- *)

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest candidates name =
  let scored =
    List.filter_map
      (fun c ->
        let d = edit_distance (String.lowercase_ascii name) (String.lowercase_ascii c) in
        if d <= max 1 (String.length c / 3) then Some (d, c) else None)
      candidates
  in
  match List.sort compare scored with
  | (_, best) :: _ -> Printf.sprintf " (did you mean %S?)" best
  | [] -> ""

(* --- circuit validation ----------------------------------------------------- *)

let builtin_names = List.map fst Rt_circuit.Generators.paper_suite @ [ "antagonist" ]

let circuit_of_string spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then Ok (Bench_file spec)
  else begin
    match Rt_circuit.Generators.by_name spec with
    | Some _ -> Ok (Builtin spec)
    | None ->
      Error
        (Printf.sprintf
           "unknown circuit %S%s; valid: %s, wide_and-N, s2:W, c6288ish:W, or a path to a \
            .bench file"
           spec (suggest builtin_names spec)
           (String.concat ", " builtin_names))
  end

let circuit_name = function
  | Builtin name -> name
  | Bench_file path -> path
  | Inline { name; _ } -> name

let load_circuit = function
  | Builtin name -> (
    match Rt_circuit.Generators.by_name name with
    | Some gen -> gen ()
    | None -> invalid_arg ("Config.load_circuit: unknown builtin " ^ name))
  | Bench_file path -> Rt_circuit.Bench_format.load path
  | Inline { netlist; _ } -> netlist

let file_digest path =
  try Digest.to_hex (Digest.file path) with Sys_error _ -> "missing"

let circuit_key = function
  | Builtin name -> "builtin:" ^ name
  | Bench_file path -> "file:" ^ file_digest path
  | Inline { digest; _ } -> "inline:" ^ digest

(* --- engine validation ------------------------------------------------------ *)

let engine_families = [ "cop"; "cond"; "bdd"; "stafan"; "mc" ]

let engine_usage = "cop | cond:K | bdd[:nodes] | stafan:N | mc:N"

let engine_of_string s =
  let int_after prefix =
    int_of_string_opt (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  let fail () =
    let family = match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s in
    Error
      (Printf.sprintf "unknown engine %S%s (valid: %s)" s (suggest engine_families family)
         engine_usage)
  in
  let need prefix k =
    match int_after prefix with
    | Some n when n > 0 -> Ok (k n)
    | Some _ | None -> fail ()
  in
  if s = "cop" then Ok Detect.Cop
  else if s = "bdd" then Ok (Detect.Bdd_exact { node_limit = 1_000_000 })
  else if String.length s > 4 && String.sub s 0 4 = "bdd:" then
    need "bdd:" (fun n -> Detect.Bdd_exact { node_limit = n })
  else if String.length s > 7 && String.sub s 0 7 = "stafan:" then
    need "stafan:" (fun n -> Detect.Stafan { n_patterns = n; seed = 7 })
  else if String.length s > 3 && String.sub s 0 3 = "mc:" then
    need "mc:" (fun n -> Detect.Monte_carlo { n_patterns = n; seed = 7 })
  else if String.length s > 5 && String.sub s 0 5 = "cond:" then
    need "cond:" (fun n -> Detect.Conditioned { max_vars = n })
  else fail ()

(* --- objective validation ---------------------------------------------------- *)

type objective_kind =
  | Single
  | N_detect of int
  | Two_stage of int option

let objective_families = [ "single"; "ndetect"; "twostage" ]

let objective_usage = "single | ndetect:K | twostage[:N1]"

let objective_of_string s =
  let fail () =
    let family = match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s in
    Error
      (Printf.sprintf "unknown objective %S%s (valid: %s)" s
         (suggest objective_families family) objective_usage)
  in
  let int_after prefix =
    int_of_string_opt (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  if s = "single" then Ok Single
  else if s = "twostage" then Ok (Two_stage None)
  else if String.length s > 8 && String.sub s 0 8 = "ndetect:" then begin
    match int_after "ndetect:" with
    | Some k when k >= 1 -> Ok (N_detect k)
    | Some _ -> Error (Printf.sprintf "objective %S: K must be >= 1 (valid: %s)" s objective_usage)
    | None -> fail ()
  end
  else if String.length s > 9 && String.sub s 0 9 = "twostage:" then begin
    match int_after "twostage:" with
    | Some n1 when n1 >= 0 -> Ok (Two_stage (Some n1))
    | Some _ -> Error (Printf.sprintf "objective %S: N1 must be >= 0 (valid: %s)" s objective_usage)
    | None -> fail ()
  end
  else fail ()

(* OPTPROB_OBJECTIVE gives the default objective spec, mirroring
   OPTPROB_OPT for the optimization stage; unset or empty means "single".
   Invalid values are rejected at config construction, not here. *)
let default_objective () =
  match Sys.getenv_opt "OPTPROB_OBJECTIVE" with
  | Some s when String.trim s <> "" -> String.trim s
  | Some _ | None -> "single"

let objective_kind t =
  match objective_of_string t.objective with
  | Ok k -> k
  | Error msg -> invalid_arg ("Config.objective_kind: " ^ msg)

(* The Objective.t instance the analysis (NORMALIZE/MINIMIZE) layers use.
   A two-stage design optimizes the paper objective within each stage, so
   its analysis instance is [single]. *)
let objective_instance t =
  match objective_kind t with
  | Single | Two_stage _ -> Rt_optprob.Objective.single
  | N_detect k -> Rt_optprob.Objective.n_detect ~k

let objective_key t = t.objective

(* --- optimization-pass validation ------------------------------------------- *)

let pass_names = Rt_circuit.Passes.names

let validate_passes names =
  let bad = List.find_opt (fun n -> not (List.mem n pass_names)) names in
  match bad with
  | None -> Ok names
  | Some n ->
    Error
      (Printf.sprintf "unknown optimization pass %S%s (valid: %s, or \"none\")" n
         (suggest pass_names n)
         (String.concat ", " pass_names))

let opt_passes_of_string s =
  let s = String.trim s in
  if s = "" || s = "none" || s = "off" then Ok []
  else
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> validate_passes

(* OPTPROB_OPT=0/off/false/no/none turns the optimization stage off
   globally; any other value (or unset) keeps the default pass list. *)
let default_opt_passes () =
  match Sys.getenv_opt "OPTPROB_OPT" with
  | Some ("0" | "off" | "false" | "no" | "none") -> []
  | Some _ | None -> Rt_circuit.Passes.default_names

let engine_kind t =
  match engine_of_string t.engine with
  | Ok e -> e
  | Error msg -> invalid_arg ("Config.engine_kind: " ^ msg)

(* --- construction ----------------------------------------------------------- *)

let d = Optimize.default_options

let of_source ?(engine = "bdd") ?(confidence = 0.95) ?(seed = 2024) ?jobs ?block_words
    ?(sweeps = d.Optimize.max_sweeps) ?(alpha = d.Optimize.alpha) ?(nf_min = d.Optimize.nf_min)
    ?(w_min = d.Optimize.w_min) ?start ?(start_jitter = d.Optimize.start_jitter)
    ?(quantize = d.Optimize.quantize) ?(weights = Uniform) ?(patterns = 10_000) ?work_dir
    ?opt_passes ?(opt_rounds = 8) ?objective circuit =
  let opt_passes = match opt_passes with Some l -> l | None -> default_opt_passes () in
  let objective = match objective with Some s -> s | None -> default_objective () in
  match engine_of_string engine with
  | Error _ as e -> e
  | Ok _ -> (
    match validate_passes opt_passes with
    | Error _ as e -> e
    | Ok opt_passes -> (
      match objective_of_string objective with
      | Error _ as e -> e
      | Ok _ ->
        if opt_rounds < 0 then
          Error (Printf.sprintf "opt_rounds must be >= 0 (got %d)" opt_rounds)
        else
          Ok
            { circuit; engine; confidence; seed; jobs; block_words; sweeps; alpha; nf_min;
              w_min; start; start_jitter; quantize; weights; patterns; work_dir; opt_passes;
              opt_rounds; objective }))

let make ?engine ?confidence ?seed ?jobs ?block_words ?sweeps ?alpha ?nf_min ?w_min ?start
    ?start_jitter ?quantize ?weights ?patterns ?work_dir ?opt_passes ?opt_rounds ?objective
    ~circuit () =
  match circuit_of_string circuit with
  | Error _ as e -> e
  | Ok source ->
    of_source ?engine ?confidence ?seed ?jobs ?block_words ?sweeps ?alpha ?nf_min ?w_min ?start
      ?start_jitter ?quantize ?weights ?patterns ?work_dir ?opt_passes ?opt_rounds ?objective
      source

let of_netlist ?engine ?confidence ?seed ?jobs ?block_words ?sweeps ?alpha ?nf_min ?w_min ?start
    ?start_jitter ?quantize ?weights ?patterns ?work_dir ?opt_passes ?opt_rounds ?objective
    ~name netlist =
  let digest = Digest.to_hex (Digest.string (Rt_circuit.Bench_format.to_string netlist)) in
  of_source ?engine ?confidence ?seed ?jobs ?block_words ?sweeps ?alpha ?nf_min ?w_min ?start
    ?start_jitter ?quantize ?weights ?patterns ?work_dir ?opt_passes ?opt_rounds ?objective
    (Inline { name; netlist; digest })

let exn = function
  | Ok v -> v
  | Error msg -> failwith msg

(* --- derived views ---------------------------------------------------------- *)

let optimize_options t =
  { Optimize.confidence = t.confidence;
    alpha = t.alpha;
    max_sweeps = t.sweeps;
    w_min = t.w_min;
    quantize = t.quantize;
    nf_min = t.nf_min;
    start = t.start;
    start_jitter = t.start_jitter;
    objective = objective_instance t }

let resolve_passes t = List.filter_map Rt_circuit.Passes.by_name t.opt_passes

let opt_key t =
  if t.opt_passes = [] then "opt=off"
  else Printf.sprintf "passes=%s;rounds=%d" (String.concat "," t.opt_passes) t.opt_rounds

let resolve_weights t c =
  match t.weights with
  | Uniform -> Array.make (Array.length (Rt_circuit.Netlist.inputs c)) 0.5
  | Weights_file path -> Rt_optprob.Weights_io.load path c
  | Weights_vector w -> Array.copy w

let weights_key t =
  match t.weights with
  | Uniform -> "uniform"
  | Weights_file path -> "wfile:" ^ file_digest path
  | Weights_vector w ->
    "wvec:"
    ^ Digest.to_hex
        (Digest.string (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") w))))

let quantize_key = function
  | Optimize.No_quantization -> "none"
  | Optimize.Grid g -> Printf.sprintf "grid:%h" g
  | Optimize.Dyadic b -> Printf.sprintf "dyadic:%d" b

let optimize_key t =
  String.concat ";"
    [ "objective=" ^ t.objective;
      Printf.sprintf "confidence=%h" t.confidence;
      Printf.sprintf "alpha=%h" t.alpha;
      Printf.sprintf "sweeps=%d" t.sweeps;
      Printf.sprintf "w_min=%h" t.w_min;
      Printf.sprintf "nf_min=%d" t.nf_min;
      Printf.sprintf "jitter=%h" t.start_jitter;
      "quantize=" ^ quantize_key t.quantize;
      (match t.start with
       | None -> "start=jittered"
       | Some w ->
         "start="
         ^ Digest.to_hex
             (Digest.string
                (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") w))))) ]
