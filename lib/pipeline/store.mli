(** Content-addressed stage-artifact store (the [--work-dir] backing).

    Artifacts are keyed by the MD5 of the stage name, the git revision,
    the relevant config slice and the digests of the upstream artifacts —
    so a resumed run with an unchanged config loads every stage from disk,
    and changing any input re-keys exactly the stages downstream of it.

    Values are marshalled; the key's git-rev component keeps stale
    marshalled layouts from older builds out of newer readers.  Corrupt or
    truncated files read as misses. *)

type t

val create : string -> t
(** Create (mkdir -p) the store rooted at a directory. *)

val key : stage:string -> parts:string list -> string
(** Deterministic hex key from the stage name, git rev and key parts. *)

val load : t -> stage:string -> key:string -> ('a * string) option
(** [(value, digest)] for the stored artifact, or [None] on miss/corruption.
    The digest is the MD5 of the file bytes (content address). *)

val save : t -> stage:string -> key:string -> 'a -> string
(** Persist atomically (write + rename); returns the artifact digest. *)

val path : t -> stage:string -> key:string -> string
(** Where an artifact lives (for tooling/tests). *)
