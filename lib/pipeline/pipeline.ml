(* The typed stage graph: Loaded -> Opt_netlist -> Faults -> Analysis ->
   Normalized -> Optimized -> Validated -> Report, each with explicit
   inputs, a pure [run] and a serialised, content-addressed artifact (see
   Store).

   A context memoises stage results in memory and, when the config has a
   work_dir, consults the artifact store first — so a run resumed after a
   crash, or re-run with only downstream options changed, skips straight
   past the untouched prefix.  Every stage records
   [pipeline.stage.<name>.{run,cache_hit}] counters and a
   [pipeline.<name>] span so obs-diff can attribute a regression to a
   stage. *)

module Detect = Rt_testability.Detect
module Normalize = Rt_optprob.Normalize
module Optimize = Rt_optprob.Optimize

type 'a staged = { value : 'a; digest : string; from_cache : bool }

type opt_netlist = {
  on_netlist : Rt_circuit.Netlist.t;
  on_remap : Rt_circuit.Passes.Remap.t;
  on_stats : Rt_circuit.Passes.stats;
}

type analysis = {
  pf : float array;
  a_weights : float array;
  proven_redundant : bool array;
  exact_mask : bool array;
  engine_desc : string;
}

type normalized = {
  n_required : float;
  nf : int;
  det_idx : int array;
  hard : int array;
  n_undetectable : int;
}

type optimized = {
  opt_report : Optimize.report;
      (* the single-stage design; for a two-stage objective this is stage 1 *)
  opt_two_stage : Optimize.two_stage_report option;
}

(* The weight vector the design actually deploys (stage-2 weights for a
   two-stage design). *)
let opt_weights o =
  match o.opt_two_stage with
  | Some ts -> ts.Optimize.ts_weights
  | None -> o.opt_report.Optimize.weights

type validated = {
  v_weights : float array;
  first_detect : int array;
  detect_count : int array;
  patterns_run : int;
  v_seed : int;
  coverage : float;
}

type report = {
  r_circuit : string;
  r_stats : string;  (* of the netlist the engines actually ran on *)
  r_raw_stats : string;  (* of the loaded netlist, pre-optimization *)
  r_opt_key : string;
  r_nodes_removed : int;
  r_engine : string;
  r_inputs : int;
  r_faults : int;
  r_redundant : int;
  r_n_conventional : float;
  r_objective : string;
  r_opt : Optimize.report;
  r_two_stage : Optimize.two_stage_report option;
  r_coverage : float;
  r_patterns : int;
  r_seed : int;
}

type t = {
  config : Config.t;
  store : Store.t option;
  mutable s_loaded : Rt_circuit.Netlist.t staged option;
  mutable s_opt : opt_netlist staged option;
  mutable s_faults : Rt_fault.Fault.t array staged option;
  mutable s_oracle : Detect.oracle option;
  mutable s_analysis : analysis staged option;
  mutable s_normalized : normalized staged option;
  mutable s_optimized : optimized staged option;
  mutable s_validated : validated staged option;
  mutable s_simulated : validated staged option;
  mutable s_report : report staged option;
}

let create config =
  { config;
    store = Option.map Store.create config.Config.work_dir;
    s_loaded = None;
    s_opt = None;
    s_faults = None;
    s_oracle = None;
    s_analysis = None;
    s_normalized = None;
    s_optimized = None;
    s_validated = None;
    s_simulated = None;
    s_report = None }

let config t = t.config

(* --- stage executor --------------------------------------------------------- *)

(* Which stage is currently computing, as a gauge the timeline sampler can
   plot: the 1-based position in the canonical stage order (0 = idle /
   between stages).  Cache hits never set it — they take microseconds. *)
let g_stage = Rt_obs.gauge "pipeline.stage_index"

let stage_index stage =
  let rec find i = function
    | [] -> 0
    | s :: rest -> if s = stage then i else find (i + 1) rest
  in
  find 1
    [ "loaded"; "opt_netlist"; "faults"; "analysis"; "optimized"; "validated"; "simulated";
      "report" ]

let exec t ~stage ~parts compute =
  let key = Store.key ~stage ~parts in
  let cached =
    match t.store with
    | Some store -> Store.load store ~stage ~key
    | None -> None
  in
  match cached with
  | Some (value, digest) ->
    Rt_obs.incr (Rt_obs.counter ("pipeline.stage." ^ stage ^ ".cache_hit"));
    ignore (Rt_obs.counter ("pipeline.stage." ^ stage ^ ".run"));
    { value; digest; from_cache = true }
  | None ->
    Rt_obs.incr (Rt_obs.counter ("pipeline.stage." ^ stage ^ ".run"));
    ignore (Rt_obs.counter ("pipeline.stage." ^ stage ^ ".cache_hit"));
    Rt_obs.gauge_set g_stage (Float.of_int (stage_index stage));
    let value =
      Fun.protect
        ~finally:(fun () -> Rt_obs.gauge_set g_stage 0.0)
        (fun () -> Rt_obs.with_span ~cat:"pipeline" ("pipeline." ^ stage) compute)
    in
    let digest =
      match t.store with
      | Some store -> Store.save store ~stage ~key value
      | None -> "mem:" ^ key
    in
    { value; digest; from_cache = false }

let memo cell set t ~stage ~parts compute =
  match cell t with
  | Some s -> s
  | None ->
    let s = exec t ~stage ~parts compute in
    set t s;
    s

(* --- stages ----------------------------------------------------------------- *)

let loaded t =
  memo
    (fun t -> t.s_loaded)
    (fun t s -> t.s_loaded <- Some s)
    t ~stage:"loaded"
    ~parts:[ Config.circuit_key t.config.Config.circuit ]
    (fun () -> Config.load_circuit t.config.Config.circuit)

let raw_circuit t = (loaded t).value

(* The optimization stage always exists (stable stage count and cache
   behaviour); with [opt_passes = []] the pass driver is the identity and
   the artifact is just the loaded netlist under an "opt=off" key. *)
let opt_netlist t =
  let l = loaded t in
  memo
    (fun t -> t.s_opt)
    (fun t s -> t.s_opt <- Some s)
    t ~stage:"opt_netlist"
    ~parts:[ Config.opt_key t.config; l.digest ]
    (fun () ->
      let passes = Config.resolve_passes t.config in
      let c, remap, stats =
        Rt_circuit.Passes.run ~rounds:t.config.Config.opt_rounds ~passes l.value
      in
      { on_netlist = c; on_remap = remap; on_stats = stats })

let circuit t = (opt_netlist t).value.on_netlist
let remap t = (opt_netlist t).value.on_remap
let opt_stats t = (opt_netlist t).value.on_stats

let faults t =
  let op = opt_netlist t in
  memo
    (fun t -> t.s_faults)
    (fun t s -> t.s_faults <- Some s)
    t ~stage:"faults" ~parts:[ op.digest ]
    (fun () -> Rt_fault.Collapse.collapsed_universe op.value.on_netlist)

let fault_list t = (faults t).value

let oracle t =
  match t.s_oracle with
  | Some o -> o
  | None ->
    let c = circuit t and fs = fault_list t in
    let o = Detect.make ?jobs:t.config.Config.jobs (Config.engine_kind t.config) c fs in
    t.s_oracle <- Some o;
    o

let analysis t =
  let op = opt_netlist t in
  let f = faults t in
  memo
    (fun t -> t.s_analysis)
    (fun t s -> t.s_analysis <- Some s)
    t ~stage:"analysis"
    ~parts:[ t.config.Config.engine; Config.weights_key t.config; op.digest; f.digest ]
    (fun () ->
      let o = oracle t in
      let x = Config.resolve_weights t.config op.value.on_netlist in
      { pf = Detect.probs o x;
        a_weights = x;
        proven_redundant = Detect.proven_redundant o;
        exact_mask = Detect.exact_mask o;
        engine_desc = Detect.describe o })

let normalized t =
  let a = analysis t in
  memo
    (fun t -> t.s_normalized)
    (fun t s -> t.s_normalized <- Some s)
    t ~stage:"normalized"
    ~parts:
      [ Printf.sprintf "confidence=%h" t.config.Config.confidence;
        "objective=" ^ (Config.objective_instance t.config).Rt_optprob.Objective.key;
        a.digest ]
    (fun () ->
      let { pf; proven_redundant; _ } = a.value in
      let det_idx =
        Array.of_list
          (List.filteri (fun i _ -> not proven_redundant.(i))
             (List.init (Array.length pf) Fun.id))
      in
      let pf_det = Array.map (fun i -> pf.(i)) det_idx in
      let norm =
        Normalize.run
          ~objective:(Config.objective_instance t.config)
          ~confidence:t.config.Config.confidence pf_det
      in
      (* Remap NORMALIZE's indices (into the detectable-filtered array)
         back to fault-array order for downstream consumers. *)
      { n_required = norm.Normalize.n;
        nf = norm.Normalize.nf;
        det_idx;
        hard = Array.map (fun k -> det_idx.(k)) (Normalize.hard_indices norm);
        n_undetectable = Array.length norm.Normalize.undetectable })

let optimized ?progress ?recorder t =
  let n = normalized t in
  memo
    (fun t -> t.s_optimized)
    (fun t s -> t.s_optimized <- Some s)
    t ~stage:"optimized"
    ~parts:[ Config.optimize_key t.config; n.digest ]
    (fun () ->
      let options = Config.optimize_options t.config in
      match Config.objective_kind t.config with
      | Config.Two_stage n1 ->
        (* The stage-1 simulated patterns use the driver's own fixed seed,
           not the config seed: [optimized] must stay seed-independent
           (its key has no seed part; only validated/report depend on the
           config seed). *)
        let ts =
          Optimize.two_stage ~options ?n1 ?jobs:t.config.Config.jobs
            ?block_words:t.config.Config.block_words ?progress ?recorder (oracle t)
        in
        { opt_report = ts.Optimize.ts_stage1; opt_two_stage = Some ts }
      | Config.Single | Config.N_detect _ ->
        { opt_report = Optimize.run ~options ?progress ?recorder (oracle t);
          opt_two_stage = None })

(* Fault-simulate [weights] with the config's seed/patterns/jobs; shared by
   the [validated] stage (optimized weights) and the [simulated] variant
   (the analysis weights, i.e. `optprob simulate`). *)
let fault_simulate t weights =
  let c = circuit t and fs = fault_list t in
  let rng = Rt_util.Rng.create t.config.Config.seed in
  let source = Rt_sim.Pattern.weighted rng weights in
  let stats =
    Rt_sim.Fault_sim.simulate ?jobs:t.config.Config.jobs
      ?block_words:t.config.Config.block_words ~drop:true c fs ~source
      ~n_patterns:t.config.Config.patterns
  in
  let total = Array.length stats.Rt_sim.Fault_sim.first_detect in
  let hit =
    Array.fold_left (fun a fd -> if fd >= 0 then a + 1 else a) 0
      stats.Rt_sim.Fault_sim.first_detect
  in
  { v_weights = weights;
    first_detect = stats.Rt_sim.Fault_sim.first_detect;
    detect_count = stats.Rt_sim.Fault_sim.detect_count;
    patterns_run = stats.Rt_sim.Fault_sim.patterns_run;
    v_seed = t.config.Config.seed;
    coverage = (if total = 0 then 1.0 else Float.of_int hit /. Float.of_int total) }

let sim_parts t ~at upstream_digest =
  [ at;
    Printf.sprintf "seed=%d" t.config.Config.seed;
    Printf.sprintf "patterns=%d" t.config.Config.patterns;
    upstream_digest ]

let validated t =
  let o = optimized t in
  memo
    (fun t -> t.s_validated)
    (fun t s -> t.s_validated <- Some s)
    t ~stage:"validated"
    ~parts:(sim_parts t ~at:"at-optimized" o.digest)
    (fun () -> fault_simulate t (opt_weights o.value))

let simulated t =
  let a = analysis t in
  memo
    (fun t -> t.s_simulated)
    (fun t s -> t.s_simulated <- Some s)
    t ~stage:"validated"
    ~parts:(sim_parts t ~at:"at-analysis" a.digest)
    (fun () -> fault_simulate t a.value.a_weights)

let sim_stats t (v : validated) =
  { Rt_sim.Fault_sim.faults = fault_list t;
    first_detect = v.first_detect;
    detect_count = v.detect_count;
    patterns_run = v.patterns_run }

let report t =
  let l = loaded t in
  let op = opt_netlist t in
  let f = faults t in
  let a = analysis t in
  let n = normalized t in
  let o = optimized t in
  let v = validated t in
  memo
    (fun t -> t.s_report)
    (fun t s -> t.s_report <- Some s)
    t ~stage:"report"
    ~parts:[ l.digest; op.digest; f.digest; a.digest; n.digest; o.digest; v.digest ]
    (fun () ->
      { r_circuit = Config.circuit_name t.config.Config.circuit;
        r_stats =
          Format.asprintf "%t" (fun ppf -> Rt_circuit.Netlist.stats op.value.on_netlist ppf);
        r_raw_stats = Format.asprintf "%t" (fun ppf -> Rt_circuit.Netlist.stats l.value ppf);
        r_opt_key = Config.opt_key t.config;
        r_nodes_removed =
          Rt_circuit.Netlist.size l.value - Rt_circuit.Netlist.size op.value.on_netlist;
        r_engine = a.value.engine_desc;
        r_inputs = Array.length (Rt_circuit.Netlist.inputs l.value);
        r_faults = Array.length f.value;
        r_redundant =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a.value.proven_redundant;
        r_n_conventional = n.value.n_required;
        r_objective = Config.objective_key t.config;
        r_opt = o.value.opt_report;
        r_two_stage = o.value.opt_two_stage;
        r_coverage = v.value.coverage;
        r_patterns = v.value.patterns_run;
        r_seed = v.value.v_seed })

(* --- whole-graph run -------------------------------------------------------- *)

type outcome = {
  o_report : report staged;
  o_stages : (string * bool) list;  (* stage name, served from cache *)
}

let stage_names =
  [ "loaded"; "opt_netlist"; "faults"; "analysis"; "normalized"; "optimized"; "validated";
    "report" ]

let run ?progress ?recorder t =
  let l = loaded t in
  let op = opt_netlist t in
  let f = faults t in
  let a = analysis t in
  let n = normalized t in
  let o = optimized ?progress ?recorder t in
  let v = validated t in
  let r = report t in
  { o_report = r;
    o_stages =
      [ ("loaded", l.from_cache);
        ("opt_netlist", op.from_cache);
        ("faults", f.from_cache);
        ("analysis", a.from_cache);
        ("normalized", n.from_cache);
        ("optimized", o.from_cache);
        ("validated", v.from_cache);
        ("report", r.from_cache) ] }

let all_cached outcome = List.for_all snd outcome.o_stages

let pp_stages ppf outcome =
  List.iter
    (fun (name, hit) ->
      Format.fprintf ppf "  %-10s %s@." name (if hit then "[cache hit]" else "[run]"))
    outcome.o_stages;
  let hits = List.length (List.filter snd outcome.o_stages) in
  Format.fprintf ppf "  %d/%d stages from cache@." hits (List.length outcome.o_stages)

let pp_report ppf r =
  Format.fprintf ppf "circuit:        %s (%s)@." r.r_circuit r.r_stats;
  if r.r_opt_key <> "opt=off" then
    Format.fprintf ppf "opt:            %s; %d nodes removed (raw: %s)@." r.r_opt_key
      r.r_nodes_removed r.r_raw_stats;
  Format.fprintf ppf "engine:         %s@." r.r_engine;
  Format.fprintf ppf "faults:         %d collapsed, %d proven redundant@." r.r_faults
    r.r_redundant;
  Format.fprintf ppf "N conventional: %s@."
    (if Float.is_finite r.r_n_conventional then Printf.sprintf "%.3e" r.r_n_conventional
     else "infinite");
  if r.r_objective <> "single" then
    Format.fprintf ppf "objective:      %s@." r.r_objective;
  Format.fprintf ppf "N initial:      %.3e@." r.r_opt.Optimize.n_initial;
  Format.fprintf ppf "N optimized:    %.3e  (gain x%.0f)@." r.r_opt.Optimize.n_final
    (Optimize.improvement r.r_opt);
  (match r.r_two_stage with
   | Some ts ->
     Format.fprintf ppf "two-stage:      N1=%d (%d survivors) + N2=%s = %s vs single %.3e@."
       ts.Optimize.ts_n1 ts.Optimize.ts_survivors
       (if Float.is_finite ts.Optimize.ts_n2 then Printf.sprintf "%.3e" ts.Optimize.ts_n2
        else "inf")
       (if Float.is_finite ts.Optimize.ts_total then Printf.sprintf "%.3e" ts.Optimize.ts_total
        else "inf")
       ts.Optimize.ts_single_n
   | None -> ());
  Format.fprintf ppf "validated:      %.2f%% coverage (%d patterns, seed %d)@."
    (100.0 *. r.r_coverage) r.r_patterns r.r_seed
