(** One typed stage-graph pipeline behind every entry point.

    [Rt_pipeline] itself is the stage graph (see {!Pipeline}); {!Config}
    is the validated run configuration, {!Store} the content-addressed
    artifact store behind [--work-dir], and {!Cli} the shared cmdliner
    flag surface. *)

module Config = Config
module Store = Store
module Cli = Cli
include Pipeline
