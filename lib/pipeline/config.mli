(** The single configuration record behind every pipeline entry point.

    A [t] fully determines one run of the paper's staged procedure:
    which circuit, which ANALYSIS engine, the optimizer budget, the
    validation fault-simulation parameters, and (optionally) the artifact
    work directory that makes the run resumable.  Validation happens at
    construction: unknown circuit or engine names are rejected with a
    did-you-mean message listing the valid choices, instead of a bare
    exception from deep inside the stack. *)

type circuit_source =
  | Builtin of string  (** generator name, incl. [wide_and-N], [s2:W], [c6288ish:W] *)
  | Bench_file of string  (** path to an ISCAS-85 [.bench] file *)
  | Inline of { name : string; netlist : Rt_circuit.Netlist.t; digest : string }
      (** an in-memory netlist (e.g. built by tests or ablations); keyed by
          the digest of its bench serialisation *)

type weights_source =
  | Uniform  (** all 0.5 — the conventional random test *)
  | Weights_file of string  (** a [Weights_io] file *)
  | Weights_vector of float array  (** explicit per-input probabilities *)

type t = {
  circuit : circuit_source;
  engine : string;  (** validated engine spec ([cop], [cond:K], [bdd:N], ...) *)
  confidence : float;
  seed : int;  (** fault-simulation seed (the only seed-dependent stages are
                   [validated]/[report]) *)
  jobs : int option;  (** worker domains; never affects results or artifact keys *)
  block_words : int option;
      (** ppsfp batch width in 64-pattern words ([--block-words] /
          [OPTPROB_BLOCK_WORDS]); like [jobs], never affects results or
          artifact keys *)
  sweeps : int;
  alpha : float;
  nf_min : int;
  w_min : float;
  start : float array option;
  start_jitter : float;
  quantize : Rt_optprob.Optimize.quantization;
  weights : weights_source;  (** the weights the ANALYSIS stage evaluates *)
  patterns : int;  (** validation fault-simulation pattern count *)
  work_dir : string option;  (** artifact store root; [None] = in-memory only *)
  opt_passes : string list;
      (** {!Rt_circuit.Passes} names run by the [opt_netlist] stage, in
          order; [[]] makes the stage the identity.  Default: every pass,
          unless [OPTPROB_OPT] is [0]/[off]/[false]/[no]/[none]. *)
  opt_rounds : int;  (** fixpoint round budget for the pass driver (default 8) *)
  objective : string;
      (** validated objective spec ([single], [ndetect:K], [twostage[:N1]]).
          Default: [OPTPROB_OBJECTIVE] when set, else [single] — mirroring
          how [OPTPROB_OPT] defaults [opt_passes]. *)
}

val make :
  ?engine:string ->
  ?confidence:float ->
  ?seed:int ->
  ?jobs:int ->
  ?block_words:int ->
  ?sweeps:int ->
  ?alpha:float ->
  ?nf_min:int ->
  ?w_min:float ->
  ?start:float array ->
  ?start_jitter:float ->
  ?quantize:Rt_optprob.Optimize.quantization ->
  ?weights:weights_source ->
  ?patterns:int ->
  ?work_dir:string ->
  ?opt_passes:string list ->
  ?opt_rounds:int ->
  ?objective:string ->
  circuit:string ->
  unit ->
  (t, string) result
(** Defaults: engine ["bdd"], confidence 0.95, seed 2024, patterns 10_000,
    and {!Rt_optprob.Optimize.default_options} for the optimizer fields.
    [Error] carries a user-ready message (with a did-you-mean suggestion)
    when the circuit or engine spec is invalid. *)

val of_source :
  ?engine:string ->
  ?confidence:float ->
  ?seed:int ->
  ?jobs:int ->
  ?block_words:int ->
  ?sweeps:int ->
  ?alpha:float ->
  ?nf_min:int ->
  ?w_min:float ->
  ?start:float array ->
  ?start_jitter:float ->
  ?quantize:Rt_optprob.Optimize.quantization ->
  ?weights:weights_source ->
  ?patterns:int ->
  ?work_dir:string ->
  ?opt_passes:string list ->
  ?opt_rounds:int ->
  ?objective:string ->
  circuit_source ->
  (t, string) result
(** Like {!make} for an already-validated circuit source. *)

val of_netlist :
  ?engine:string ->
  ?confidence:float ->
  ?seed:int ->
  ?jobs:int ->
  ?block_words:int ->
  ?sweeps:int ->
  ?alpha:float ->
  ?nf_min:int ->
  ?w_min:float ->
  ?start:float array ->
  ?start_jitter:float ->
  ?quantize:Rt_optprob.Optimize.quantization ->
  ?weights:weights_source ->
  ?patterns:int ->
  ?work_dir:string ->
  ?opt_passes:string list ->
  ?opt_rounds:int ->
  ?objective:string ->
  name:string ->
  Rt_circuit.Netlist.t ->
  (t, string) result
(** Like {!make} for an in-memory netlist. *)

val exn : (t, string) result -> t
(** [exn r] unwraps or raises [Failure] with the validation message. *)

val circuit_of_string : string -> (circuit_source, string) result
val engine_of_string : string -> (Rt_testability.Detect.engine, string) result
(** Both reject unknown names with a did-you-mean message. *)

val opt_passes_of_string : string -> (string list, string) result
(** Comma-separated {!Rt_circuit.Passes} names ([""], ["none"] and
    ["off"] mean no passes); unknown names are rejected with a
    did-you-mean message. *)

type objective_kind =
  | Single  (** the paper objective *)
  | N_detect of int  (** [ndetect:K] — minimise missed [K]-fold detections *)
  | Two_stage of int option
      (** [twostage[:N1]] — adaptive two-stage design; [Some n1] pins the
          stage-1 budget, [None] searches the split grid *)

val objective_of_string : string -> (objective_kind, string) result
(** Rejects unknown specs with the shared did-you-mean message. *)

val objective_usage : string
(** One-line summary of the objective grammar (for --help texts). *)

val engine_usage : string
(** One-line summary of the engine grammar (for --help texts). *)

val circuit_name : circuit_source -> string
val load_circuit : circuit_source -> Rt_circuit.Netlist.t
val engine_kind : t -> Rt_testability.Detect.engine
val objective_kind : t -> objective_kind

val objective_instance : t -> Rt_optprob.Objective.t
(** The {!Rt_optprob.Objective.t} the analysis layers (NORMALIZE /
    MINIMIZE) use: [single] for [Single] and [Two_stage] (each stage of a
    two-stage design minimises the paper objective), [n_detect] for
    [N_detect]. *)

val optimize_options : t -> Rt_optprob.Optimize.options
val resolve_weights : t -> Rt_circuit.Netlist.t -> float array

val resolve_passes : t -> Rt_circuit.Passes.pass list
(** The validated [opt_passes] names resolved to actual passes. *)

(** {1 Artifact keying}

    Deterministic strings folded into stage keys.  [jobs] and
    [block_words] are deliberately absent everywhere: results are
    bit-identical for every value of either. *)

val circuit_key : circuit_source -> string
(** Builtin name, or content digest for files and inline netlists. *)

val weights_key : t -> string

val optimize_key : t -> string
(** Includes the objective spec, so optimizer artifacts from different
    objectives occupy distinct store keys. *)

val objective_key : t -> string
(** The validated objective spec verbatim (e.g. ["ndetect:2"]) — the
    config-slice value recorded in manifests and the registry. *)

val opt_key : t -> string
(** ["opt=off"] when [opt_passes = []], else the pass list and round
    budget — the config slice of the [opt_netlist] stage key. *)

val edit_distance : string -> string -> int
(** Levenshtein distance (exposed for tests). *)
