(* Content-addressed artifact store under a --work-dir.

   One file per stage output: <dir>/<stage>-<key>.art where the key is the
   MD5 of (schema, stage, git rev, config slice, upstream artifact
   digests).  The payload is a one-line self-describing header followed by
   the marshalled value; the file's own MD5 is the artifact digest fed
   into downstream keys, so a change anywhere upstream reliably re-keys
   everything below it.  Unreadable or truncated files are treated as
   cache misses and overwritten (writes go through a rename so a crash
   mid-write never leaves a plausible-looking artifact behind). *)

type t = { dir : string }

let schema = "optprob-pipeline-artifact/3"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create dir =
  mkdir_p dir;
  { dir }

let key ~stage ~parts =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (schema :: stage :: Rt_obs.Artifact.git_rev () :: parts)))

let path t ~stage ~key = Filename.concat t.dir (stage ^ "-" ^ key ^ ".art")

let header stage = schema ^ " " ^ stage ^ "\n"

let load t ~stage ~key =
  let p = path t ~stage ~key in
  if not (Sys.file_exists p) then None
  else begin
    try
      let ic = open_in_bin p in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len in
      close_in ic;
      let h = header stage in
      let hl = String.length h in
      if len <= hl || String.sub bytes 0 hl <> h then None
      else begin
        let value = Marshal.from_string bytes hl in
        Some (value, Digest.to_hex (Digest.string bytes))
      end
    with _ -> None
  end

let save t ~stage ~key value =
  let body = header stage ^ Marshal.to_string value [] in
  let p = path t ~stage ~key in
  let tmp = p ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc body;
  close_out oc;
  Sys.rename tmp p;
  Digest.to_hex (Digest.string body)
