(* The one shared command-line surface for pipeline configs.  Subcommands
   compose [config] (or individual args) instead of re-declaring their own
   flag soup; validation (with did-you-mean) happens at parse time via the
   Arg converters, so errors render as proper cmdliner usage errors. *)

open Cmdliner

let msg r = Result.map_error (fun m -> `Msg m) r

let circuit_conv =
  let parse s = msg (Config.circuit_of_string s) in
  let print ppf src = Format.pp_print_string ppf (Config.circuit_name src) in
  Arg.conv ~docv:"CIRCUIT" (parse, print)

let engine_conv =
  let parse s = msg (Result.map (fun _ -> s) (Config.engine_of_string s)) in
  Arg.conv ~docv:"ENGINE" (parse, Format.pp_print_string)

let circuit_arg =
  Arg.(required & pos 0 (some circuit_conv) None & info [] ~docv:"CIRCUIT"
         ~doc:"Built-in circuit name (see $(b,optprob list)) or path to a .bench file.")

let engine_arg =
  Arg.(value & opt engine_conv "bdd" & info [ "engine"; "e" ] ~docv:"ENGINE"
         ~doc:("ANALYSIS engine: " ^ Config.engine_usage ^ "."))

let confidence_arg =
  Arg.(value & opt float 0.95 & info [ "confidence" ] ~docv:"C"
         ~doc:"Target confidence of the random test.")

let seed_arg = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"J"
         ~doc:"Worker domains for the parallel kernels (default: $(b,OPTPROB_JOBS) or 1). \
               Results and stage artifacts are independent of J.")

let block_words_arg =
  Arg.(value & opt (some int) None & info [ "block-words" ] ~docv:"W"
         ~doc:"Fault-simulation batch width in 64-pattern words (default: \
               $(b,OPTPROB_BLOCK_WORDS) or 4, i.e. 256 patterns per good-machine pass). \
               Results and stage artifacts are independent of W.")

let weights_arg =
  Arg.(value & opt (some string) None & info [ "weights"; "w" ] ~docv:"FILE"
         ~doc:"Weight file (from `optprob optimize -o`); default: all 0.5.")

let sweeps_arg =
  Arg.(value & opt int 10 & info [ "sweeps" ] ~docv:"K" ~doc:"Maximum optimisation sweeps.")

let grid_arg =
  Arg.(value & opt (some float) (Some 0.05) & info [ "grid" ] ~docv:"G"
         ~doc:"Quantisation grid (paper appendix: 0.05); 0 disables.")

let dyadic_arg =
  Arg.(value & opt (some int) None & info [ "dyadic" ] ~docv:"BITS"
         ~doc:"Quantise to k/2^BITS instead (LFSR weighting hardware grid).")

let patterns_arg ~default =
  Arg.(value & opt int default & info [ "patterns"; "n" ] ~docv:"N"
         ~doc:"Number of random patterns for fault simulation.")

let work_dir_arg =
  Arg.(value & opt (some string) None & info [ "work-dir" ] ~docv:"DIR"
         ~doc:"Content-addressed stage-artifact store.  A re-run with an unchanged config \
               loads every stage from $(docv) (zero re-execution); changing an option \
               re-runs exactly the stages downstream of it.")

let opt_passes_conv =
  let parse s = msg (Config.opt_passes_of_string s) in
  let print ppf l = Format.pp_print_string ppf (String.concat "," l) in
  Arg.conv ~docv:"PASSES" (parse, print)

let no_opt_arg =
  Arg.(value & flag & info [ "no-opt" ]
         ~doc:"Disable the netlist optimization stage (equivalent to \
               $(b,--opt-passes) $(i,none) or $(b,OPTPROB_OPT=off)).")

let opt_passes_arg =
  Arg.(value & opt (some opt_passes_conv) None & info [ "opt-passes" ] ~docv:"LIST"
         ~doc:("Comma-separated netlist optimization passes run to fixpoint before fault \
                analysis (default: all).  Valid: "
               ^ String.concat ", " Rt_circuit.Passes.names
               ^ ", or $(i,none)."))

let opt_rounds_arg =
  Arg.(value & opt int 8 & info [ "opt-rounds" ] ~docv:"R"
         ~doc:"Fixpoint round budget for the optimization passes.")

(* Validated at parse time so a typo renders as a cmdliner usage error
   carrying the shared did-you-mean suggestion. *)
let objective_conv =
  let parse s = msg (Result.map (fun _ -> s) (Config.objective_of_string s)) in
  Arg.conv ~docv:"OBJECTIVE" (parse, Format.pp_print_string)

let objective_arg =
  Arg.(value & opt (some objective_conv) None & info [ "objective" ] ~docv:"OBJECTIVE"
         ~doc:("Optimization objective: " ^ Config.objective_usage
               ^ ".  $(i,single) is the paper objective; $(i,ndetect:K) minimises the                   expected number of faults detected fewer than K times;                   $(i,twostage[:N1]) searches (or pins) an adaptive two-stage split.                   Default: $(b,OPTPROB_OBJECTIVE) or $(i,single)."))

let quantize grid dyadic =
  match (dyadic, grid) with
  | Some bits, _ -> Rt_optprob.Optimize.Dyadic bits
  | None, Some g when g > 0.0 -> Rt_optprob.Optimize.Grid g
  | None, (Some _ | None) -> Rt_optprob.Optimize.No_quantization

(* All subcommand configs funnel through Config.build via this one
   constructor; the circuit/engine args are pre-validated by their
   converters so [Config.exn] cannot raise here. *)
let make_config circuit engine confidence seed jobs block_words sweeps grid dyadic weights
    patterns work_dir no_opt opt_passes opt_rounds objective =
  let weights =
    match weights with None -> Config.Uniform | Some path -> Config.Weights_file path
  in
  let opt_passes = if no_opt then Some [] else opt_passes in
  match
    Config.of_source ~engine ~confidence ~seed ?jobs ?block_words ~sweeps
      ~quantize:(quantize grid dyadic) ~weights ~patterns ?work_dir ?opt_passes
      ~opt_rounds ?objective circuit
  with
  | Ok cfg -> cfg
  | Error msg -> failwith msg

let config ?(default_patterns = 10_000) () =
  Term.(
    const make_config $ circuit_arg $ engine_arg $ confidence_arg $ seed_arg $ jobs_arg
    $ block_words_arg $ sweeps_arg $ grid_arg $ dyadic_arg $ weights_arg
    $ patterns_arg ~default:default_patterns $ work_dir_arg $ no_opt_arg $ opt_passes_arg
    $ opt_rounds_arg $ objective_arg)
