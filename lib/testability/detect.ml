module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module Bdd = Rt_bdd.Bdd
module Bdd_circuit = Rt_bdd.Bdd_circuit
module Parallel = Rt_util.Parallel

type engine =
  | Cop
  | Conditioned of { max_vars : int }
  | Bdd_exact of { node_limit : int }
  | Stafan of { n_patterns : int; seed : int }
  | Monte_carlo of { n_patterns : int; seed : int }

type oracle = {
  c : Netlist.t;
  fault_list : Fault.t array;
  run : float array -> float array;
  run_subset : int array -> float array -> float array;
  label : string;
  exact : bool array;
  redundant : bool array;
}

let injection f =
  match f.Fault.site with
  | Fault.Stem n -> Bdd_circuit.Stem (n, f.Fault.stuck)
  | Fault.Branch (g, k) -> Bdd_circuit.Pin (g, k, f.Fault.stuck)

(* --- Subset plans ---------------------------------------------------------

   PREPARE (paper §4) only ever asks for the detection probabilities of the
   [nf] hardest faults, so every engine gets a [run_subset] that restricts
   its work to those faults' cones.  The node masks are derived once per
   subset and cached keyed on the physical identity of the index array —
   OPTIMIZE passes the same [hard_indices] array for the whole sweep. *)

type plan = {
  key : int array;  (* compared with ==, never dereferenced for content *)
  sel : Fault.t array;
  obs_mask : bool array;
      (* union of the selected faults' transitive fanout cones: the nodes
         whose observability the COP/STAFAN estimate needs (fanout-closed
         because ids are topological). *)
  sp_mask : bool array;
      (* fanin closure of the masked nodes and their side pins: the nodes
         whose signal probability those observabilities (plus the
         activation terms) read. *)
}

let make_plan c faults subset =
  let n = Netlist.size c in
  let nf = Array.length faults in
  let sel =
    Array.map
      (fun i ->
        if i < 0 || i >= nf then invalid_arg "Detect.probs_subset: fault index out of range";
        faults.(i))
      subset
  in
  let obs_mask = Array.make n false in
  Array.iter
    (fun f ->
      let site = match f.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
      obs_mask.(site) <- true)
    sel;
  (* Fanout closure in one ascending sweep (fanin ids are smaller). *)
  for i = 0 to n - 1 do
    if not obs_mask.(i) then
      if Array.exists (fun j -> obs_mask.(j)) (Netlist.fanin c i) then obs_mask.(i) <- true
  done;
  let sp_mask = Array.make n false in
  for i = 0 to n - 1 do
    if obs_mask.(i) then begin
      sp_mask.(i) <- true;
      Array.iter (fun j -> sp_mask.(j) <- true) (Netlist.fanin c i)
    end
  done;
  (* Fanin closure in one descending sweep. *)
  for i = n - 1 downto 0 do
    if sp_mask.(i) then Array.iter (fun j -> sp_mask.(j) <- true) (Netlist.fanin c i)
  done;
  { key = subset; sel; obs_mask; sp_mask }

let plan_cache () : plan option ref = ref None

let c_plan_hit = Rt_obs.counter "detect.plan.hit"
let c_plan_miss = Rt_obs.counter "detect.plan.miss"
let c_bdd_nodes = Rt_obs.counter "bdd.nodes_allocated"

let get_plan cache c faults subset =
  match !cache with
  | Some p when p.key == subset ->
    Rt_obs.incr c_plan_hit;
    p
  | Some _ | None ->
    Rt_obs.incr c_plan_miss;
    let p = Rt_obs.with_span ~cat:"detect" "subset_plan" (fun () -> make_plan c faults subset) in
    cache := Some p;
    p

(* --- COP ------------------------------------------------------------------ *)

let cop_fault_prob c ~sp ~obs f =
  let src = Fault.source f c in
  let act = if f.Fault.stuck then 1.0 -. sp.(src) else sp.(src) in
  match f.Fault.site with
  | Fault.Stem n -> act *. obs.(n)
  | Fault.Branch (g, k) -> act *. Observability.pin_observability c ~node_probs:sp ~obs g k

let cop_fill ~jobs c ~sp ~obs faults out =
  let nf = Array.length faults in
  (* The per-fault work is sub-microsecond: only worth domains on large
     universes (and never more domains than cores — see Parallel.region). *)
  Parallel.region ~label:"cop.fill" ~min_per_chunk:1024 ~seq_below:4096 ~jobs ~n:nf
    (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        out.(i) <- cop_fault_prob c ~sp ~obs faults.(i)
      done)

let cop_probs ?(jobs = 1) c faults x =
  let sp = Signal_prob.independence c x in
  let obs = Observability.cop c ~node_probs:sp in
  let out = Array.make (Array.length faults) 0.0 in
  cop_fill ~jobs c ~sp ~obs faults out;
  out

let cop_probs_subset ?(jobs = 1) c plan x =
  let sp = Signal_prob.independence_subset c ~mask:plan.sp_mask x in
  let obs = Observability.cop_subset c ~mask:plan.obs_mask ~node_probs:sp in
  let out = Array.make (Array.length plan.sel) 0.0 in
  cop_fill ~jobs c ~sp ~obs plan.sel out;
  out

(* PREDICT-style (ABS86): Shannon-expand the COP estimate over the
   highest-fanout inputs — activation and observability are conditionally
   estimated per assignment, which removes the input-level correlations
   plain COP ignores.  The assignments are independent, so with [jobs > 1]
   they are sharded across domains (per-domain accumulators merged in
   chunk order; [jobs = 1] keeps the exact serial summation order). *)
let conditioned_expand ~jobs ~positions ~nf x eval_assignment =
  let k = Array.length positions in
  let n_assign = 1 lsl k in
  let accumulate ~lo ~hi =
    let acc = Array.make nf 0.0 in
    let x' = Array.copy x in
    for a = lo to hi - 1 do
      let weight = ref 1.0 in
      Array.iteri
        (fun j pos ->
          if (a lsr j) land 1 = 1 then begin
            x'.(pos) <- 1.0;
            weight := !weight *. x.(pos)
          end
          else begin
            x'.(pos) <- 0.0;
            weight := !weight *. (1.0 -. x.(pos))
          end)
        positions;
      if !weight > 0.0 then begin
        let pf = eval_assignment x' in
        Array.iteri (fun i v -> acc.(i) <- acc.(i) +. (!weight *. v)) pf
      end
    done;
    acc
  in
  if jobs <= 1 then accumulate ~lo:0 ~hi:n_assign
  else begin
    (* Each assignment is a full COP sweep — heavy enough that any split
       pays off, so only the hardware clamp applies. *)
    let partials =
      Parallel.map_region ~label:"conditioned.expand" ~jobs ~n:n_assign (fun ~lo ~hi ->
          accumulate ~lo ~hi)
    in
    match partials with
    | [] -> Array.make nf 0.0
    | first :: rest ->
      List.iter (fun p -> Array.iteri (fun i v -> first.(i) <- first.(i) +. v) p) rest;
      first
  end

let conditioned_probs ?(jobs = 1) ~max_vars c faults x =
  let set = Signal_prob.conditioning_set ~max_vars c in
  if Array.length set = 0 then cop_probs ~jobs c faults x
  else begin
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    conditioned_expand ~jobs ~positions ~nf:(Array.length faults) x (fun x' ->
        cop_probs c faults x')
  end

let conditioned_probs_subset ?(jobs = 1) ~max_vars c plan x =
  let set = Signal_prob.conditioning_set ~max_vars c in
  if Array.length set = 0 then cop_probs_subset ~jobs c plan x
  else begin
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    conditioned_expand ~jobs ~positions ~nf:(Array.length plan.sel) x (fun x' ->
        cop_probs_subset c plan x')
  end

let make_cop ?(jobs = 1) c faults =
  let cache = plan_cache () in
  { c;
    fault_list = faults;
    run = (fun x -> cop_probs ~jobs c faults x);
    run_subset = (fun subset x -> cop_probs_subset ~jobs c (get_plan cache c faults subset) x);
    label = "cop";
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let make_conditioned ?(jobs = 1) ~max_vars c faults =
  let cache = plan_cache () in
  { c;
    fault_list = faults;
    run = (fun x -> conditioned_probs ~jobs ~max_vars c faults x);
    run_subset =
      (fun subset x -> conditioned_probs_subset ~jobs ~max_vars c (get_plan cache c faults subset) x);
    label = Printf.sprintf "conditioned(cop, %d vars)" (Array.length (Signal_prob.conditioning_set ~max_vars c));
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

(* Exact engine.  Good-circuit BDDs are built once per "generation"; per
   fault only its transitive-fanout cone is rebuilt with the fault
   injected, and the boolean difference at the outputs becomes the fault's
   detection BDD.  The shared unique table fills up with per-fault
   intermediates, so when it overflows a fresh generation (new manager,
   same variable order, rebuilt good circuit) continues with the remaining
   faults — only a fault too large for an empty manager falls back to the
   COP estimate. *)
let make_bdd ~node_limit ?(max_generations = 6) c faults =
  let nf = Array.length faults in
  let cache = plan_cache () in
  let exact = Array.make nf false in
  let redundant = Array.make nf false in
  let order = Bdd_circuit.dfs_order c in
  let n = Netlist.size c in
  let outputs = Netlist.outputs c in
  let new_generation () =
    let m = Bdd.manager ~node_limit ~nvars:(Array.length (Netlist.inputs c)) () in
    let good = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      good.(i) <-
        (match Netlist.kind c i with
         | Gate.Input -> Bdd.var m order.(Netlist.input_index c i)
         | k -> Bdd.apply_kind m k (Array.map (fun j -> good.(j)) (Netlist.fanin c i)))
    done;
    (m, good)
  in
  let build_fault m good f =
    let site_node = match f.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
    let mask = Rt_circuit.Cone.transitive_fanout c site_node in
    let bad = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let value =
          match f.Fault.site with
          | Fault.Stem s when s = i -> if f.Fault.stuck then Bdd.one m else Bdd.zero m
          | Fault.Stem _ | Fault.Branch _ ->
            let fanin = Netlist.fanin c i in
            let args = Array.map (fun j -> if mask.(j) then bad.(j) else good.(j)) fanin in
            let args =
              match f.Fault.site with
              | Fault.Branch (g, k) when g = i ->
                let args = Array.copy args in
                args.(k) <- (if f.Fault.stuck then Bdd.one m else Bdd.zero m);
                args
              | Fault.Branch _ | Fault.Stem _ -> args
            in
            Bdd.apply_kind m (Netlist.kind c i) args
        in
        bad.(i) <- value
      end
    done;
    Array.fold_left
      (fun acc o -> if mask.(o) then Bdd.or_ m acc (Bdd.xor_ m good.(o) bad.(o)) else acc)
      (Bdd.zero m) outputs
  in
  (* detect_roots.(fi) = Some (generation, root). *)
  let detect_roots = Array.make nf None in
  (* Built most-recent-first; reversed into an array once construction is
     done (the former [!gens @ [gen]] append was quadratic in generations). *)
  let generations_rev = ref [] in
  let total_nodes = ref 0 in
  Rt_obs.with_span ~cat:"detect" "bdd.build" @@ fun () ->
  (match new_generation () with
   | exception Bdd.Limit_exceeded -> ()
   | first_gen ->
     let current = ref first_gen in
     let gen_idx = ref 0 in
     let fresh = ref true in
     let gen_yield = ref 0 in
     (* A generation that places almost no faults before overflowing means
        the per-fault BDDs are intrinsically large for this circuit;
        further generations would burn time for nothing. *)
     let min_yield = max 8 (nf / 20) in
     generations_rev := [ first_gen ];
     let fi = ref 0 in
     while !fi < nf do
       let f = faults.(!fi) in
       let m, good = !current in
       (match build_fault m good f with
        | detect ->
          detect_roots.(!fi) <- Some (!gen_idx, detect);
          exact.(!fi) <- true;
          if Bdd.is_zero detect then redundant.(!fi) <- true;
          fresh := false;
          incr gen_yield;
          incr fi
        | exception Bdd.Limit_exceeded ->
          if !fresh then begin
            (* Too big even for an empty manager: estimate this fault. *)
            incr fi
          end
          else if List.length !generations_rev >= max_generations || !gen_yield < min_yield then
            fi := nf
          else begin
            match new_generation () with
            | exception Bdd.Limit_exceeded -> fi := nf
            | gen ->
              total_nodes := !total_nodes + Bdd.node_count m;
              current := gen;
              incr gen_idx;
              fresh := true;
              gen_yield := 0;
              generations_rev := gen :: !generations_rev
          end)
     done;
     let m, _ = !current in
     total_nodes := !total_nodes + Bdd.node_count m);
  let generations = Array.of_list (List.rev !generations_rev) in
  Rt_obs.add c_bdd_nodes !total_nodes;
  let x_of_var_table x =
    let t = Array.make (max 1 (Array.length order)) 0.5 in
    Array.iteri (fun i v -> t.(v) <- x.(i)) order;
    t
  in
  let run x =
    let x_of_var = x_of_var_table x in
    let out = Array.make nf 0.0 in
    (* Batch the prob evaluation per generation to share memo tables. *)
    Array.iteri
      (fun gi (m, _) ->
        let idxs = ref [] and roots = ref [] in
        Array.iteri
          (fun fi r ->
            match r with
            | Some (g, root) when g = gi ->
              idxs := fi :: !idxs;
              roots := root :: !roots
            | Some _ | None -> ())
          detect_roots;
        let vals = Bdd.prob_many m (Array.of_list !roots) (fun v -> x_of_var.(v)) in
        List.iteri (fun j fi -> out.(fi) <- vals.(j)) !idxs)
      generations;
    if Array.exists (fun r -> r = None) detect_roots then begin
      let fb = cop_probs c faults x in
      Array.iteri (fun fi r -> if r = None then out.(fi) <- fb.(fi)) detect_roots
    end;
    out
  in
  (* Subset queries evaluate only the selected detection roots; a
     generation none of the selected faults landed in is not traversed at
     all, and the COP fallback cone is restricted to the subset's plan. *)
  let run_subset subset x =
    let plan = get_plan cache c faults subset in
    let x_of_var = x_of_var_table x in
    let ns = Array.length subset in
    let out = Array.make ns 0.0 in
    Array.iteri
      (fun gi (m, _) ->
        let idxs = ref [] and roots = ref [] in
        Array.iteri
          (fun j fi ->
            match detect_roots.(fi) with
            | Some (g, root) when g = gi ->
              idxs := j :: !idxs;
              roots := root :: !roots
            | Some _ | None -> ())
          subset;
        match !roots with
        | [] -> ()
        | rs ->
          let vals = Bdd.prob_many m (Array.of_list rs) (fun v -> x_of_var.(v)) in
          List.iteri (fun p j -> out.(j) <- vals.(p)) !idxs)
      generations;
    if Array.exists (fun fi -> detect_roots.(fi) = None) subset then begin
      let fb = cop_probs_subset c plan x in
      Array.iteri (fun j fi -> if detect_roots.(fi) = None then out.(j) <- fb.(j)) subset
    end;
    out
  in
  let n_exact = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 exact in
  { c;
    fault_list = faults;
    run;
    run_subset;
    label =
      Printf.sprintf "bdd-exact(%d/%d exact, %d generations, %d nodes)" n_exact nf
        (Array.length generations) !total_nodes;
    exact;
    redundant }

let make_stafan ~n_patterns ~seed c faults =
  let cache = plan_cache () in
  let count x =
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.weighted rng x in
    Stafan.count c ~source ~n_patterns
  in
  { c;
    fault_list = faults;
    run = (fun x -> Stafan.detection_probs c (count x) faults);
    run_subset =
      (fun subset x ->
        let plan = get_plan cache c faults subset in
        Stafan.detection_probs_subset c ~mask:plan.obs_mask (count x) plan.sel);
    label = Printf.sprintf "stafan(%d patterns)" n_patterns;
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let make_mc ?(jobs = 1) ~n_patterns ~seed c faults =
  let cache = plan_cache () in
  { c;
    fault_list = faults;
    run = (fun x -> Rt_sim.Detect_mc.detection_probs ~jobs c faults ~weights:x ~n_patterns ~seed);
    run_subset =
      (fun subset x ->
        (* Without dropping, each fault's detection counts depend only on
           the shared pattern stream, so simulating the selected faults
           alone reproduces the full run's estimates exactly. *)
        let plan = get_plan cache c faults subset in
        Rt_sim.Detect_mc.detection_probs ~jobs c plan.sel ~weights:x ~n_patterns ~seed);
    label = Printf.sprintf "monte-carlo(%d patterns)" n_patterns;
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let engine_kind = function
  | Cop -> "cop"
  | Conditioned _ -> "conditioned"
  | Bdd_exact _ -> "bdd"
  | Stafan _ -> "stafan"
  | Monte_carlo _ -> "mc"

(* Every dispatch through the oracle is a span named "analysis" (the
   paper's phase) categorised by engine, plus per-engine query counters —
   full-vector and subset queries separately so the PREPARE savings are
   visible in a metrics snapshot. *)
let observe kind o =
  let c_full = Rt_obs.counter ("oracle.queries." ^ kind) in
  let c_sub = Rt_obs.counter ("oracle.subset_queries." ^ kind) in
  { o with
    run =
      (fun x ->
        Rt_obs.incr c_full;
        Rt_obs.with_span ~cat:kind "analysis" (fun () -> o.run x));
    run_subset =
      (fun subset x ->
        Rt_obs.incr c_sub;
        Rt_obs.with_span ~cat:kind "analysis" (fun () -> o.run_subset subset x)) }

let make ?jobs engine c faults =
  let jobs = Parallel.resolve_jobs jobs in
  observe (engine_kind engine)
    (match engine with
     | Cop -> make_cop ~jobs c faults
     | Conditioned { max_vars } -> make_conditioned ~jobs ~max_vars c faults
     | Bdd_exact { node_limit } -> make_bdd ~node_limit c faults
     | Stafan { n_patterns; seed } -> make_stafan ~n_patterns ~seed c faults
     | Monte_carlo { n_patterns; seed } -> make_mc ~jobs ~n_patterns ~seed c faults)

let probs o x =
  if Array.length x <> Array.length (Netlist.inputs o.c) then
    invalid_arg "Detect.probs: weight vector width mismatch";
  o.run x

let probs_subset o subset x =
  if Array.length x <> Array.length (Netlist.inputs o.c) then
    invalid_arg "Detect.probs_subset: weight vector width mismatch";
  o.run_subset subset x

let faults o = o.fault_list
let circuit o = o.c
let describe o = o.label
let exact_mask o = Array.copy o.exact
let proven_redundant o = Array.copy o.redundant
