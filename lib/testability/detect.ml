(* Engine constructors for the oracle protocol, plus the original
   [Detect.*] entry points as thin forwards to [Oracle].  The query
   mechanics — subset plans, keyed plan cache, counters, spans, the
   generic cofactor fallback — all live in [Oracle]; the COP sweep core
   and the incremental damage-cone evaluator live in [Cop_eval].  What
   remains here is one constructor per ANALYSIS engine, each registering
   its fused [cofactor_pair] when it has one:

   - COP: a shared incremental state re-evaluates only the flipped
     input's cone (and commits the patch when the optimizer moves the
     base point by one coordinate);
   - conditioned COP: per-assignment incremental states under the
     Shannon expansion (serial path only — the sharded path's partial
     sums have their own association order);
   - exact BDD: one paired traversal per generation returns both
     cofactors of every selected detection root;
   - STAFAN / Monte-Carlo: the weighted pattern batches drawn for the
     x_i = 0 run are recorded and replayed with input column [i] forced
     to all-ones, so both cofactors share one pattern generation. *)

module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module Bdd = Rt_bdd.Bdd
module Bdd_circuit = Rt_bdd.Bdd_circuit
module Parallel = Rt_util.Parallel
module Pattern = Rt_sim.Pattern

type engine =
  | Cop
  | Conditioned of { max_vars : int }
  | Bdd_exact of { node_limit : int }
  | Stafan of { n_patterns : int; seed : int }
  | Monte_carlo of { n_patterns : int; seed : int }

type oracle = Oracle.t

let injection f =
  match f.Fault.site with
  | Fault.Stem n -> Bdd_circuit.Stem (n, f.Fault.stuck)
  | Fault.Branch (g, k) -> Bdd_circuit.Pin (g, k, f.Fault.stuck)

let c_bdd_nodes = Rt_obs.counter "bdd.nodes_allocated"

let no_flags faults = Array.make (Array.length faults) false

(* --- COP ------------------------------------------------------------------ *)

let make_cop ~jobs c faults =
  let st = Cop_eval.create ~jobs c in
  Oracle.make ~kind:"cop" ~label:"cop" ~c ~faults ~exact:(no_flags faults)
    ~redundant:(no_flags faults)
    ~run:(fun x -> Cop_eval.probs ~jobs c faults x)
    ~run_subset:(fun plan x -> Cop_eval.probs_subset ~jobs c plan x)
    ~cofactor_pair:(fun plan ~input x -> Cop_eval.cofactor_pair st plan ~input x)
    ()

(* PREDICT-style (ABS86): Shannon-expand the COP estimate over the
   highest-fanout inputs — activation and observability are conditionally
   estimated per assignment, which removes the input-level correlations
   plain COP ignores.  The assignments are independent, so with [jobs > 1]
   they are sharded across domains (per-domain accumulators merged in
   chunk order; [jobs = 1] keeps the exact serial summation order). *)
let conditioned_expand ~jobs ~positions ~nf x eval_assignment =
  let k = Array.length positions in
  let n_assign = 1 lsl k in
  let accumulate ~lo ~hi =
    let acc = Array.make nf 0.0 in
    let x' = Array.copy x in
    for a = lo to hi - 1 do
      let weight = ref 1.0 in
      Array.iteri
        (fun j pos ->
          if (a lsr j) land 1 = 1 then begin
            x'.(pos) <- 1.0;
            weight := !weight *. x.(pos)
          end
          else begin
            x'.(pos) <- 0.0;
            weight := !weight *. (1.0 -. x.(pos))
          end)
        positions;
      if !weight > 0.0 then begin
        let pf = eval_assignment x' in
        Array.iteri (fun i v -> acc.(i) <- acc.(i) +. (!weight *. v)) pf
      end
    done;
    acc
  in
  if jobs <= 1 then accumulate ~lo:0 ~hi:n_assign
  else begin
    (* Each assignment is a full COP sweep — heavy enough that any split
       pays off, so only the hardware clamp applies. *)
    let partials =
      Parallel.map_region ~label:"conditioned.expand" ~jobs ~n:n_assign (fun ~lo ~hi ->
          accumulate ~lo ~hi)
    in
    match partials with
    | [] -> Array.make nf 0.0
    | first :: rest ->
      List.iter (fun p -> Array.iteri (fun i v -> first.(i) <- first.(i) +. v) p) rest;
      first
  end

let conditioned_probs ?(jobs = 1) ~max_vars c faults x =
  let set = Signal_prob.conditioning_set ~max_vars c in
  if Array.length set = 0 then Cop_eval.probs ~jobs c faults x
  else begin
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    conditioned_expand ~jobs ~positions ~nf:(Array.length faults) x (fun x' ->
        Cop_eval.probs c faults x')
  end

let conditioned_probs_subset ?(jobs = 1) ~max_vars c plan x =
  let set = Signal_prob.conditioning_set ~max_vars c in
  if Array.length set = 0 then Cop_eval.probs_subset ~jobs c plan x
  else begin
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    conditioned_expand ~jobs ~positions ~nf:(Array.length (Oracle.selected plan)) x (fun x' ->
        Cop_eval.probs_subset c plan x')
  end

(* Fused conditioned cofactors (serial expansion only): one incremental
   COP state per live assignment.  When the flipped input is itself a
   conditioning variable its value is fixed by the assignment, so one
   evaluation serves both cofactors and only the Shannon weights differ
   (the x_i factor becomes 0.0 or 1.0 — bit-identical to the reference
   loop's [x''.(pos)] factor, since multiplying by 1.0 is exact and a
   0.0 factor zeroes the product and skips the assignment).  Otherwise
   the assignment's state answers both cofactors from one damage cone. *)
let conditioned_cofactor ~positions c =
  let n_assign = 1 lsl Array.length positions in
  let states = Array.make n_assign None in
  let state a =
    match states.(a) with
    | Some s -> s
    | None ->
      let s = Cop_eval.create ~jobs:1 c in
      states.(a) <- Some s;
      s
  in
  let input_conditioned input = Array.exists (fun p -> p = input) positions in
  fun plan ~input x ->
    let nf = Array.length (Oracle.selected plan) in
    let acc0 = Array.make nf 0.0 and acc1 = Array.make nf 0.0 in
    let fixed = input_conditioned input in
    let x' = Array.copy x in
    for a = 0 to n_assign - 1 do
      let w0 = ref 1.0 and w1 = ref 1.0 in
      Array.iteri
        (fun j pos ->
          let bit = (a lsr j) land 1 = 1 in
          x'.(pos) <- (if bit then 1.0 else 0.0);
          if pos = input then begin
            (* factor = the cofactor's value of x_i, per branch *)
            if bit then begin
              w0 := !w0 *. 0.0;
              w1 := !w1 *. 1.0
            end
            else begin
              w0 := !w0 *. 1.0;
              w1 := !w1 *. 0.0
            end
          end
          else begin
            let f = if bit then x.(pos) else 1.0 -. x.(pos) in
            w0 := !w0 *. f;
            w1 := !w1 *. f
          end)
        positions;
      if !w0 > 0.0 || !w1 > 0.0 then begin
        if fixed then begin
          let pf = Cop_eval.eval (state a) plan x' in
          if !w0 > 0.0 then Array.iteri (fun i v -> acc0.(i) <- acc0.(i) +. (!w0 *. v)) pf;
          if !w1 > 0.0 then Array.iteri (fun i v -> acc1.(i) <- acc1.(i) +. (!w1 *. v)) pf
        end
        else begin
          let pf0, pf1 = Cop_eval.cofactor_pair (state a) plan ~input x' in
          Array.iteri (fun i v -> acc0.(i) <- acc0.(i) +. (!w0 *. v)) pf0;
          Array.iteri (fun i v -> acc1.(i) <- acc1.(i) +. (!w1 *. v)) pf1
        end
      end
    done;
    (acc0, acc1)

let make_conditioned ~jobs ~max_vars c faults =
  let set = Signal_prob.conditioning_set ~max_vars c in
  let k = Array.length set in
  let cofactor =
    if k = 0 then begin
      (* No conditioning variables: the engine degenerates to plain COP,
         so a plain incremental state is the fused path. *)
      let st = Cop_eval.create ~jobs c in
      Some (fun plan ~input x -> Cop_eval.cofactor_pair st plan ~input x)
    end
    else if jobs = 1 && k <= 8 then begin
      let positions = Array.map (fun i -> Netlist.input_index c i) set in
      Some (conditioned_cofactor ~positions c)
    end
    else
      (* Sharded expansion sums per-chunk partials whose association
         order the fused path cannot reproduce bit-exactly — let the
         protocol fall back to two plain subset queries. *)
      None
  in
  Oracle.make ~kind:"conditioned"
    ~label:(Printf.sprintf "conditioned(cop, %d vars)" k)
    ~c ~faults ~exact:(no_flags faults) ~redundant:(no_flags faults)
    ~run:(fun x -> conditioned_probs ~jobs ~max_vars c faults x)
    ~run_subset:(fun plan x -> conditioned_probs_subset ~jobs ~max_vars c plan x)
    ?cofactor_pair:cofactor ()

(* Exact engine.  Good-circuit BDDs are built once per "generation"; per
   fault only its transitive-fanout cone is rebuilt with the fault
   injected, and the boolean difference at the outputs becomes the fault's
   detection BDD.  The shared unique table fills up with per-fault
   intermediates, so when it overflows a fresh generation (new manager,
   same variable order, rebuilt good circuit) continues with the remaining
   faults — only a fault too large for an empty manager falls back to the
   COP estimate. *)
let make_bdd ~node_limit ?(max_generations = 6) c faults =
  let nf = Array.length faults in
  let exact = Array.make nf false in
  let redundant = Array.make nf false in
  let order = Bdd_circuit.dfs_order c in
  let n = Netlist.size c in
  let outputs = Netlist.outputs c in
  let new_generation () =
    let m = Bdd.manager ~node_limit ~nvars:(Array.length (Netlist.inputs c)) () in
    let good = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      good.(i) <-
        (match Netlist.kind c i with
         | Gate.Input -> Bdd.var m order.(Netlist.input_index c i)
         | k -> Bdd.apply_kind m k (Array.map (fun j -> good.(j)) (Netlist.fanin c i)))
    done;
    (m, good)
  in
  let build_fault m good f =
    let site_node = match f.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
    let mask = Rt_circuit.Cone.transitive_fanout c site_node in
    let bad = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let value =
          match f.Fault.site with
          | Fault.Stem s when s = i -> if f.Fault.stuck then Bdd.one m else Bdd.zero m
          | Fault.Stem _ | Fault.Branch _ ->
            let fanin = Netlist.fanin c i in
            let args = Array.map (fun j -> if mask.(j) then bad.(j) else good.(j)) fanin in
            let args =
              match f.Fault.site with
              | Fault.Branch (g, k) when g = i ->
                let args = Array.copy args in
                args.(k) <- (if f.Fault.stuck then Bdd.one m else Bdd.zero m);
                args
              | Fault.Branch _ | Fault.Stem _ -> args
            in
            Bdd.apply_kind m (Netlist.kind c i) args
        in
        bad.(i) <- value
      end
    done;
    Array.fold_left
      (fun acc o -> if mask.(o) then Bdd.or_ m acc (Bdd.xor_ m good.(o) bad.(o)) else acc)
      (Bdd.zero m) outputs
  in
  (* detect_roots.(fi) = Some (generation, root). *)
  let detect_roots = Array.make nf None in
  (* Built most-recent-first; reversed into an array once construction is
     done (the former [!gens @ [gen]] append was quadratic in generations). *)
  let generations_rev = ref [] in
  let total_nodes = ref 0 in
  Rt_obs.with_span ~cat:"detect" "bdd.build" (fun () ->
      match new_generation () with
      | exception Bdd.Limit_exceeded -> ()
      | first_gen ->
        let current = ref first_gen in
        let gen_idx = ref 0 in
        let fresh = ref true in
        let gen_yield = ref 0 in
        (* A generation that places almost no faults before overflowing means
           the per-fault BDDs are intrinsically large for this circuit;
           further generations would burn time for nothing. *)
        let min_yield = max 8 (nf / 20) in
        generations_rev := [ first_gen ];
        let fi = ref 0 in
        while !fi < nf do
          let f = faults.(!fi) in
          let m, good = !current in
          (match build_fault m good f with
           | detect ->
             detect_roots.(!fi) <- Some (!gen_idx, detect);
             exact.(!fi) <- true;
             if Bdd.is_zero detect then redundant.(!fi) <- true;
             fresh := false;
             incr gen_yield;
             incr fi
           | exception Bdd.Limit_exceeded ->
             if !fresh then begin
               (* Too big even for an empty manager: estimate this fault. *)
               incr fi
             end
             else if List.length !generations_rev >= max_generations || !gen_yield < min_yield
             then fi := nf
             else begin
               match new_generation () with
               | exception Bdd.Limit_exceeded -> fi := nf
               | gen ->
                 total_nodes := !total_nodes + Bdd.node_count m;
                 current := gen;
                 incr gen_idx;
                 fresh := true;
                 gen_yield := 0;
                 generations_rev := gen :: !generations_rev
             end)
        done;
        let m, _ = !current in
        total_nodes := !total_nodes + Bdd.node_count m);
  let generations = Array.of_list (List.rev !generations_rev) in
  Rt_obs.add c_bdd_nodes !total_nodes;
  let x_of_var_table x =
    let t = Array.make (max 1 (Array.length order)) 0.5 in
    Array.iteri (fun i v -> t.(v) <- x.(i)) order;
    t
  in
  (* Selected detection roots of one generation, as (position-in-subset,
     root) lists — a generation none of the selected faults landed in is
     not traversed at all. *)
  let gen_roots subset gi =
    let idxs = ref [] and roots = ref [] in
    Array.iteri
      (fun j fi ->
        match detect_roots.(fi) with
        | Some (g, root) when g = gi ->
          idxs := j :: !idxs;
          roots := root :: !roots
        | Some _ | None -> ())
      subset;
    (!idxs, !roots)
  in
  let run x =
    let x_of_var = x_of_var_table x in
    let out = Array.make nf 0.0 in
    (* Batch the prob evaluation per generation to share memo tables. *)
    Array.iteri
      (fun gi (m, _) ->
        let idxs = ref [] and roots = ref [] in
        Array.iteri
          (fun fi r ->
            match r with
            | Some (g, root) when g = gi ->
              idxs := fi :: !idxs;
              roots := root :: !roots
            | Some _ | None -> ())
          detect_roots;
        let vals = Bdd.prob_many m (Array.of_list !roots) (fun v -> x_of_var.(v)) in
        List.iteri (fun j fi -> out.(fi) <- vals.(j)) !idxs)
      generations;
    if Array.exists (fun r -> r = None) detect_roots then begin
      let fb = Cop_eval.probs c faults x in
      Array.iteri (fun fi r -> if r = None then out.(fi) <- fb.(fi)) detect_roots
    end;
    out
  in
  let run_subset plan x =
    let subset = Oracle.subset plan in
    let x_of_var = x_of_var_table x in
    let out = Array.make (Array.length subset) 0.0 in
    Array.iteri
      (fun gi (m, _) ->
        match gen_roots subset gi with
        | _, [] -> ()
        | idxs, roots ->
          let vals = Bdd.prob_many m (Array.of_list roots) (fun v -> x_of_var.(v)) in
          List.iteri (fun p j -> out.(j) <- vals.(p)) idxs)
      generations;
    if Array.exists (fun fi -> detect_roots.(fi) = None) subset then begin
      let fb = Cop_eval.probs_subset c plan x in
      Array.iteri (fun j fi -> if detect_roots.(fi) = None then out.(j) <- fb.(j)) subset
    end;
    out
  in
  (* Both cofactors of every selected root from one paired traversal per
     generation.  The shared scalar sub-traversal above the cofactor
     variable is what the two independent evaluations would each have
     repeated.  Faults without a BDD (None roots) fall back to the same
     two masked COP sweeps the generic path would run. *)
  let cofactor plan ~input x =
    let subset = Oracle.subset plan in
    let x_of_var = x_of_var_table x in
    let fvar = order.(input) in
    let ns = Array.length subset in
    let out0 = Array.make ns 0.0 and out1 = Array.make ns 0.0 in
    Array.iteri
      (fun gi (m, _) ->
        match gen_roots subset gi with
        | _, [] -> ()
        | idxs, roots ->
          let pairs =
            Bdd.prob_pair_many m (Array.of_list roots) ~var:fvar (fun v -> x_of_var.(v))
          in
          List.iteri
            (fun p j ->
              let v0, v1 = pairs.(p) in
              out0.(j) <- v0;
              out1.(j) <- v1)
            idxs)
      generations;
    if Array.exists (fun fi -> detect_roots.(fi) = None) subset then begin
      let x' = Array.copy x in
      x'.(input) <- 0.0;
      let fb0 = Cop_eval.probs_subset c plan x' in
      x'.(input) <- 1.0;
      let fb1 = Cop_eval.probs_subset c plan x' in
      Array.iteri
        (fun j fi ->
          if detect_roots.(fi) = None then begin
            out0.(j) <- fb0.(j);
            out1.(j) <- fb1.(j)
          end)
        subset
    end;
    (out0, out1)
  in
  let n_exact = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 exact in
  Oracle.make ~kind:"bdd"
    ~label:
      (Printf.sprintf "bdd-exact(%d/%d exact, %d generations, %d nodes)" n_exact nf
         (Array.length generations) !total_nodes)
    ~c ~faults ~exact ~redundant ~run ~run_subset ~cofactor_pair:cofactor ()

(* --- Pattern-counting engines ---------------------------------------------

   STAFAN and Monte-Carlo share the cofactor trick: [Rng.biased_word]
   consumes no randomness for a probability of exactly 0.0 or 1.0, so the
   pattern streams for x with x_i := 0.0 and x_i := 1.0 are identical in
   every column except [i] (all-zeros vs all-ones).  Recording the batches
   of the x_i = 0 run and replaying them with column [i] forced to -1L
   therefore reproduces the x_i = 1 run's batches bit-exactly while paying
   for pattern generation once.  Both simulators pull the source only from
   their serial batch loop, so the stateful sources are safe at any
   [jobs]. *)

let recording_source base =
  let recorded = ref [] in
  let source () =
    let b = base () in
    recorded := b :: !recorded;
    b
  in
  (source, recorded)

let replaying_source ~input base recorded =
  let remaining = ref (List.rev !recorded) in
  fun () ->
    let b =
      match !remaining with
      | b :: rest ->
        remaining := rest;
        b
      | [] -> base ()
    in
    let bits = Array.copy b.Pattern.bits in
    bits.(input) <- -1L;
    { b with Pattern.bits }

let make_stafan ~n_patterns ~seed c faults =
  let count x =
    let rng = Rt_util.Rng.create seed in
    let source = Pattern.weighted rng x in
    Stafan.count c ~source ~n_patterns
  in
  let cofactor plan ~input x =
    let sel = Oracle.selected plan in
    let mask = Oracle.obs_mask plan in
    let x0 = Array.copy x in
    x0.(input) <- 0.0;
    let rng = Rt_util.Rng.create seed in
    let base = Pattern.weighted rng x0 in
    let record, recorded = recording_source base in
    let counts0 = Stafan.count c ~source:record ~n_patterns in
    let pf0 = Stafan.detection_probs_subset c ~mask counts0 sel in
    let counts1 =
      Stafan.count c ~source:(replaying_source ~input base recorded) ~n_patterns
    in
    let pf1 = Stafan.detection_probs_subset c ~mask counts1 sel in
    (pf0, pf1)
  in
  Oracle.make ~kind:"stafan"
    ~label:(Printf.sprintf "stafan(%d patterns)" n_patterns)
    ~c ~faults ~exact:(no_flags faults) ~redundant:(no_flags faults)
    ~run:(fun x -> Stafan.detection_probs c (count x) faults)
    ~run_subset:
      (fun plan x ->
        Stafan.detection_probs_subset c ~mask:(Oracle.obs_mask plan) (count x)
          (Oracle.selected plan))
    ~cofactor_pair:cofactor ()

let make_mc ~jobs ~n_patterns ~seed c faults =
  let cofactor plan ~input x =
    let sel = Oracle.selected plan in
    let x0 = Array.copy x in
    x0.(input) <- 0.0;
    let rng = Rt_util.Rng.create seed in
    let base = Pattern.weighted rng x0 in
    let record, recorded = recording_source base in
    let pf0 = Rt_sim.Detect_mc.detection_probs_source ~jobs c sel ~source:record ~n_patterns in
    let pf1 =
      Rt_sim.Detect_mc.detection_probs_source ~jobs c sel
        ~source:(replaying_source ~input base recorded)
        ~n_patterns
    in
    (pf0, pf1)
  in
  Oracle.make ~kind:"mc"
    ~label:(Printf.sprintf "monte-carlo(%d patterns)" n_patterns)
    ~c ~faults ~exact:(no_flags faults) ~redundant:(no_flags faults)
    ~run:(fun x -> Rt_sim.Detect_mc.detection_probs ~jobs c faults ~weights:x ~n_patterns ~seed)
    ~run_subset:
      (fun plan x ->
        (* Without dropping, each fault's detection counts depend only on
           the shared pattern stream, so simulating the selected faults
           alone reproduces the full run's estimates exactly. *)
        Rt_sim.Detect_mc.detection_probs ~jobs c (Oracle.selected plan) ~weights:x ~n_patterns
          ~seed)
    ~cofactor_pair:cofactor ()

let make ?jobs engine c faults =
  let jobs = Parallel.resolve_jobs jobs in
  match engine with
  | Cop -> make_cop ~jobs c faults
  | Conditioned { max_vars } -> make_conditioned ~jobs ~max_vars c faults
  | Bdd_exact { node_limit } -> make_bdd ~node_limit c faults
  | Stafan { n_patterns; seed } -> make_stafan ~n_patterns ~seed c faults
  | Monte_carlo { n_patterns; seed } -> make_mc ~jobs ~n_patterns ~seed c faults

let probs = Oracle.probs
let probs_subset = Oracle.probs_subset
let faults = Oracle.faults
let circuit = Oracle.circuit
let describe = Oracle.describe
let exact_mask = Oracle.exact_mask
let proven_redundant = Oracle.proven_redundant
