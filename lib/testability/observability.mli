(** COP-style observability: the probability that a value change on a line
    propagates to some primary output under random patterns.

    Computed in one backward sweep from the outputs, using the signal
    probabilities of the side inputs along each path.  Reconvergent fanout
    makes this an estimate; the [stem_rule] picks how branch
    observabilities recombine at a stem. *)

type stem_rule =
  | Complement_product
      (** [1 - prod (1 - o_b)]: treats branches as independent detection
          opportunities (STAFAN's choice); can overestimate. *)
  | Maximum
      (** [max o_b]: a lower bound that never overestimates through
          reconvergence masking alone. *)

val cop :
  ?stem_rule:stem_rule ->
  Rt_circuit.Netlist.t ->
  node_probs:float array ->
  float array
(** Observability of every node ([node_probs] from
    {!Signal_prob.independence} or better).  Default rule:
    [Complement_product]. *)

val cop_subset :
  ?stem_rule:stem_rule ->
  Rt_circuit.Netlist.t ->
  mask:bool array ->
  node_probs:float array ->
  float array
(** {!cop} restricted to the nodes where [mask] is true; other entries stay
    0.  [mask] must be fanout-closed (every reader of a masked node is
    masked) — e.g. a union of transitive fanout cones — so masked values
    equal the full sweep's exactly. *)

val cop_node :
  Rt_circuit.Netlist.t ->
  stem_rule:stem_rule ->
  node_probs:float array ->
  obs:float array ->
  Rt_circuit.Netlist.node ->
  float
(** One node's observability given its readers' observabilities in [obs]
    and side-input signal probabilities in [node_probs] — the body of one
    {!cop} sweep step.  Exposed so incremental evaluators can recompute
    exactly the dirty nodes of a damage cone with the same arithmetic as
    the full sweep. *)

val pin_sensitization :
  Rt_circuit.Netlist.t -> node_probs:float array -> Rt_circuit.Netlist.node -> int -> float
(** Probability that gate [g]'s output is sensitive to its pin [k] (all
    other pins at non-controlling values; 1 for XOR-family). *)

val pin_observability :
  Rt_circuit.Netlist.t ->
  node_probs:float array ->
  obs:float array ->
  Rt_circuit.Netlist.node ->
  int ->
  float
(** Observability of the connection into pin [k] of gate [g]:
    [pin_sensitization * obs(g)]. *)
