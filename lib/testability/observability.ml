module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

type stem_rule =
  | Complement_product
  | Maximum

let pin_sensitization c ~node_probs g k =
  let fi = Netlist.fanin c g in
  match Netlist.kind c g with
  | Gate.Input | Gate.Const0 | Gate.Const1 ->
    invalid_arg "Observability.pin_sensitization: not a gate"
  | Gate.Buf | Gate.Not -> 1.0
  | Gate.Xor | Gate.Xnor -> 1.0
  | Gate.And | Gate.Nand ->
    let p = ref 1.0 in
    Array.iteri (fun j f -> if j <> k then p := !p *. node_probs.(f)) fi;
    !p
  | Gate.Or | Gate.Nor ->
    let p = ref 1.0 in
    Array.iteri (fun j f -> if j <> k then p := !p *. (1.0 -. node_probs.(f))) fi;
    !p

let pin_observability c ~node_probs ~obs g k =
  pin_sensitization c ~node_probs g k *. obs.(g)

let cop_node c ~stem_rule ~node_probs ~obs g =
  let base = if Netlist.is_output c g then 1.0 else 0.0 in
  let branch_obs = ref [] in
  Array.iter
    (fun reader ->
      let fi = Netlist.fanin c reader in
      Array.iteri
        (fun k f ->
          if f = g then
            branch_obs := pin_observability c ~node_probs ~obs reader k :: !branch_obs)
        fi)
    (Netlist.fanout c g);
  match stem_rule with
  | Complement_product ->
    1.0 -. List.fold_left (fun acc o -> acc *. (1.0 -. o)) (1.0 -. base) !branch_obs
  | Maximum -> List.fold_left Float.max base !branch_obs

let cop ?(stem_rule = Complement_product) c ~node_probs =
  let n = Netlist.size c in
  let obs = Array.make n 0.0 in
  for g = n - 1 downto 0 do
    obs.(g) <- cop_node c ~stem_rule ~node_probs ~obs g
  done;
  obs

let cop_subset ?(stem_rule = Complement_product) c ~mask ~node_probs =
  let n = Netlist.size c in
  if Array.length mask <> n then invalid_arg "Observability.cop_subset: mask size";
  let obs = Array.make n 0.0 in
  for g = n - 1 downto 0 do
    if mask.(g) then obs.(g) <- cop_node c ~stem_rule ~node_probs ~obs g
  done;
  obs
