module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module Pattern = Rt_sim.Pattern

type counts = {
  n_patterns : int;
  ones : int array;
  sens : int array array;
}

let popcount_64 w =
  let open Int64 in
  let x = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* Word of lanes where gate [g]'s output is sensitive to pin [k]. *)
let sens_word c vals g k =
  let fi = Netlist.fanin c g in
  match Netlist.kind c g with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> 0L
  | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor -> -1L
  | Gate.And | Gate.Nand ->
    let acc = ref (-1L) in
    Array.iteri (fun j f -> if j <> k then acc := Int64.logand !acc vals.(f)) fi;
    !acc
  | Gate.Or | Gate.Nor ->
    let acc = ref (-1L) in
    Array.iteri (fun j f -> if j <> k then acc := Int64.logand !acc (Int64.lognot vals.(f))) fi;
    !acc

let count c ~source ~n_patterns =
  let n = Netlist.size c in
  let ones = Array.make n 0 in
  let sens =
    Array.init n (fun g ->
        match Netlist.kind c g with
        | Gate.Input | Gate.Const0 | Gate.Const1 -> [||]
        | _ -> Array.make (Array.length (Netlist.fanin c g)) 0)
  in
  let sim = Rt_sim.Logic_sim.create c in
  let remaining = ref n_patterns in
  while !remaining > 0 do
    let batch = source () in
    let batch =
      if batch.Pattern.n_patterns <= !remaining then batch
      else { batch with Pattern.n_patterns = !remaining }
    in
    let lanes = Pattern.lane_mask batch in
    Rt_sim.Logic_sim.run sim batch;
    let vals = Rt_sim.Logic_sim.values sim in
    for g = 0 to n - 1 do
      ones.(g) <- ones.(g) + popcount_64 (Int64.logand vals.(g) lanes);
      let s = sens.(g) in
      for k = 0 to Array.length s - 1 do
        s.(k) <- s.(k) + popcount_64 (Int64.logand (sens_word c vals g k) lanes)
      done
    done;
    remaining := !remaining - batch.Pattern.n_patterns
  done;
  { n_patterns; ones; sens }

let controllability counts n = Float.of_int counts.ones.(n) /. Float.of_int counts.n_patterns

let observability_node c counts ~stem_rule ~total ~obs g =
  let base = if Netlist.is_output c g then 1.0 else 0.0 in
  let branch_obs = ref [] in
  Array.iter
    (fun reader ->
      Array.iteri
        (fun k f ->
          if f = g then begin
            let sens_p = Float.of_int counts.sens.(reader).(k) /. total in
            branch_obs := (sens_p *. obs.(reader)) :: !branch_obs
          end)
        (Netlist.fanin c reader))
    (Netlist.fanout c g);
  match stem_rule with
  | Observability.Complement_product ->
    1.0 -. List.fold_left (fun acc o -> acc *. (1.0 -. o)) (1.0 -. base) !branch_obs
  | Observability.Maximum -> List.fold_left Float.max base !branch_obs

let observability ?(stem_rule = Observability.Complement_product) c counts =
  let n = Netlist.size c in
  let total = Float.of_int counts.n_patterns in
  let obs = Array.make n 0.0 in
  for g = n - 1 downto 0 do
    obs.(g) <- observability_node c counts ~stem_rule ~total ~obs g
  done;
  obs

let observability_subset ?(stem_rule = Observability.Complement_product) c ~mask counts =
  let n = Netlist.size c in
  if Array.length mask <> n then invalid_arg "Stafan.observability_subset: mask size";
  let total = Float.of_int counts.n_patterns in
  let obs = Array.make n 0.0 in
  for g = n - 1 downto 0 do
    if mask.(g) then obs.(g) <- observability_node c counts ~stem_rule ~total ~obs g
  done;
  obs

let fault_prob c counts ~total ~obs f =
  let src = Fault.source f c in
  let c1 = controllability counts src in
  let act = if f.Fault.stuck then 1.0 -. c1 else c1 in
  match f.Fault.site with
  | Fault.Stem n -> act *. obs.(n)
  | Fault.Branch (g, k) ->
    let sens_p = Float.of_int counts.sens.(g).(k) /. total in
    act *. sens_p *. obs.(g)

let detection_probs ?stem_rule c counts faults =
  let obs = observability ?stem_rule c counts in
  let total = Float.of_int counts.n_patterns in
  Array.map (fault_prob c counts ~total ~obs) faults

let detection_probs_subset ?stem_rule c ~mask counts faults =
  let obs = observability_subset ?stem_rule c ~mask counts in
  let total = Float.of_int counts.n_patterns in
  Array.map (fault_prob c counts ~total ~obs) faults
