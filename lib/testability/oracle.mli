(** The engine-agnostic oracle protocol.

    An oracle is a record-of-closures answering detection-probability
    queries for a fixed circuit and fault list.  Three query shapes:

    - {!probs}: the full vector [p_f(X)] (the paper's ANALYSIS);
    - {!probs_subset} / {!probs_plan}: the same restricted to a fault
      subset's cones;
    - {!cofactor_pair}: both single-variable cofactors [p_f(X,0|i)] and
      [p_f(X,1|i)] of a subset from {e one} traversal — the PREPARE step
      (paper §4, eq. 15), the optimizer's hot path.

    Engines register a fused [cofactor_pair] at construction when they can
    share work between the two cofactors (incremental damage-cone
    re-evaluation for COP/conditioned, a paired BDD traversal, a replayed
    pattern base for MC/STAFAN); otherwise the protocol falls back to two
    independent subset queries.  Both paths return bit-identical vectors —
    the fused implementations are required to reproduce the fallback's
    floats exactly — so switching engines or paths never changes optimizer
    results.  The [oracle.cofactor.incremental] / [oracle.cofactor.full]
    counters record which path served each query. *)

type plan
(** A prepared subset query: the selected faults plus the node masks
    (observability cone union; fanin-closed signal-probability support)
    their evaluation touches.  Plans are tied to the oracle family that
    made them (same circuit and fault array). *)

type t

val make :
  kind:string ->
  label:string ->
  c:Rt_circuit.Netlist.t ->
  faults:Rt_fault.Fault.t array ->
  exact:bool array ->
  redundant:bool array ->
  run:(float array -> float array) ->
  run_subset:(plan -> float array -> float array) ->
  ?cofactor_pair:(plan -> input:int -> float array -> float array * float array) ->
  unit ->
  t
(** Engine constructors call this.  [kind] names the engine family for
    counters and spans ("cop", "bdd", ...); [label] is the human
    description.  [run_subset] receives a validated plan.  The optional
    [cofactor_pair] is the engine's fused two-cofactor evaluation; it must
    be bit-identical to evaluating [run_subset] twice at [x] with
    coordinate [input] set to 0.0 and 1.0, and must not mutate [x]. *)

val plan : t -> int array -> plan
(** [plan o subset] prepares (or retrieves) the cone masks for a fault
    subset — element [j] of subset-query results corresponds to fault
    index [subset.(j)].  Plans are cached keyed on the physical identity
    of [subset] (a small MRU list, so alternating between a few subsets
    does not thrash); reuse one index array across calls, as
    {!Rt_optprob.Optimize.run} does per sweep, to amortise planning.
    Raises [Invalid_argument] on out-of-range fault indices. *)

(** Plan accessors, for engine implementations (treat the returned arrays
    as read-only — they are the plan's own state). *)

val subset : plan -> int array
(** The fault-index array the plan was built from. *)

val selected : plan -> Rt_fault.Fault.t array
(** The selected faults, in subset order. *)

val obs_mask : plan -> bool array
(** Union of the selected faults' transitive fanout cones (fanout-closed):
    the nodes whose observability the estimate needs. *)

val sp_mask : plan -> bool array
(** Fanin closure of the masked nodes and their side pins: the nodes whose
    signal probability the evaluation reads.  Fanin-closed by
    construction. *)

val probs : t -> float array -> float array
(** [probs o x] is [p_f(X)] for each fault, in fault-array order. *)

val probs_subset : t -> int array -> float array -> float array
(** [probs_subset o subset x] is [probs_plan o (plan o subset) x]. *)

val probs_plan : t -> plan -> float array -> float array
(** Subset query against a prepared plan: equals gathering the selected
    entries from {!probs} bit-exactly, while doing only the subset's share
    of the work. *)

val cofactor_pair : t -> plan -> input:int -> x:float array -> float array * float array
(** [cofactor_pair o p ~input ~x] is
    [(probs_plan o p x0, probs_plan o p x1)] where [x0]/[x1] are [x] with
    coordinate [input] replaced by 0.0 / 1.0 — computed in one fused
    evaluation when the engine supports it.  [x] itself is never mutated.
    Bit-identical to the two independent queries by contract. *)

val faults : t -> Rt_fault.Fault.t array
val circuit : t -> Rt_circuit.Netlist.t

val kind : t -> string
(** The engine family name used in this oracle's counters and spans. *)

val describe : t -> string

val exact_mask : t -> bool array
(** Per fault: whether the value returned by {!probs} is exact. *)

val proven_redundant : t -> bool array
(** Per fault: an exact engine proved the fault undetectable.  Estimators
    return all-false. *)
