(* The engine-agnostic oracle protocol (record-of-closures).  Every
   ANALYSIS engine — COP, conditioned COP, exact BDD, STAFAN, Monte-Carlo
   — is a value of [t]; the optimizer talks only to this interface.

   The protocol's core operation is [cofactor_pair]: both single-variable
   cofactors p_f(X,0|i) and p_f(X,1|i) of a fault subset from ONE
   traversal (paper §4, eq. 15 — the PREPARE step).  Engines that can
   exploit incrementality provide a fused implementation (registered via
   [?cofactor_pair] at construction); the others fall back to two
   independent subset queries.  Which path ran is visible in the
   [oracle.cofactor.{incremental,full}] counters and the per-query span. *)

module Netlist = Rt_circuit.Netlist
module Fault = Rt_fault.Fault

type plan = {
  key : int array;
      (* the subset index array; cache lookups compare it with [==] *)
  owner : Fault.t array;
      (* the fault array the indices refer to; queries validate it with
         [==] so a plan can never be replayed against another oracle *)
  sel : Fault.t array;
  obs_mask : bool array;
      (* union of the selected faults' transitive fanout cones: the nodes
         whose observability the COP/STAFAN estimate needs (fanout-closed
         because ids are topological). *)
  sp_mask : bool array;
      (* fanin closure of the masked nodes and their side pins: the nodes
         whose signal probability those observabilities (plus the
         activation terms) read. *)
}

type t = {
  c : Netlist.t;
  fault_list : Fault.t array;
  kind : string;
  label : string;
  exact : bool array;
  redundant : bool array;
  run : float array -> float array;
  run_subset : plan -> float array -> float array;
  cofactor : (plan -> input:int -> float array -> float array * float array) option;
  mutable plans : plan list;  (* MRU-first keyed cache, bounded *)
  cq_run : Rt_obs.counter;
  cq_subset : Rt_obs.counter;
  cq_cofactor : Rt_obs.counter;
  h_run : Rt_obs.histogram;
  h_subset : Rt_obs.histogram;
  h_cofactor : Rt_obs.histogram;
}

let c_plan_hit = Rt_obs.counter "detect.plan.hit"
let c_plan_miss = Rt_obs.counter "detect.plan.miss"
let c_cof_incremental = Rt_obs.counter "oracle.cofactor.incremental"
let c_cof_full = Rt_obs.counter "oracle.cofactor.full"

let make ~kind ~label ~c ~faults ~exact ~redundant ~run ~run_subset ?cofactor_pair () =
  { c;
    fault_list = faults;
    kind;
    label;
    exact;
    redundant;
    run;
    run_subset;
    cofactor = cofactor_pair;
    plans = [];
    cq_run = Rt_obs.counter ("oracle.queries." ^ kind);
    cq_subset = Rt_obs.counter ("oracle.subset_queries." ^ kind);
    cq_cofactor = Rt_obs.counter ("oracle.cofactor_queries." ^ kind);
    h_run = Rt_obs.histogram ("oracle.latency_us.full." ^ kind);
    h_subset = Rt_obs.histogram ("oracle.latency_us.subset." ^ kind);
    h_cofactor = Rt_obs.histogram ("oracle.latency_us.cofactor_pair." ^ kind) }

(* --- Subset plans ---------------------------------------------------------

   PREPARE (paper §4) only ever asks for the detection probabilities of the
   [nf] hardest faults, so every engine gets a [run_subset] / [cofactor]
   that restricts its work to those faults' cones.  The node masks are
   derived once per subset and cached keyed on the physical identity of the
   index array — OPTIMIZE passes the same [hard_indices] array for a whole
   sweep.  The cache holds several recent plans (MRU first) so callers that
   alternate between subsets — partitioning, interleaved sweeps over
   different prefixes — no longer thrash a single slot. *)

let max_cached_plans = 8

let make_plan c faults subset =
  let n = Netlist.size c in
  let nf = Array.length faults in
  let sel =
    Array.map
      (fun i ->
        if i < 0 || i >= nf then invalid_arg "Oracle.plan: fault index out of range";
        faults.(i))
      subset
  in
  let obs_mask = Array.make n false in
  Array.iter
    (fun f ->
      let site = match f.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
      obs_mask.(site) <- true)
    sel;
  (* Fanout closure in one ascending sweep (fanin ids are smaller). *)
  for i = 0 to n - 1 do
    if not obs_mask.(i) then
      if Array.exists (fun j -> obs_mask.(j)) (Netlist.fanin c i) then obs_mask.(i) <- true
  done;
  let sp_mask = Array.make n false in
  for i = 0 to n - 1 do
    if obs_mask.(i) then begin
      sp_mask.(i) <- true;
      Array.iter (fun j -> sp_mask.(j) <- true) (Netlist.fanin c i)
    end
  done;
  (* Fanin closure in one descending sweep. *)
  for i = n - 1 downto 0 do
    if sp_mask.(i) then Array.iter (fun j -> sp_mask.(j) <- true) (Netlist.fanin c i)
  done;
  { key = subset; owner = faults; sel; obs_mask; sp_mask }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | p :: rest -> p :: take (n - 1) rest

let plan o subset =
  let rec find acc = function
    | [] -> None
    | p :: rest when p.key == subset -> Some (p, List.rev_append acc rest)
    | p :: rest -> find (p :: acc) rest
  in
  match find [] o.plans with
  | Some (p, rest) ->
    Rt_obs.incr c_plan_hit;
    o.plans <- p :: rest;
    p
  | None ->
    Rt_obs.incr c_plan_miss;
    let p =
      Rt_obs.with_span ~cat:"detect" "subset_plan" (fun () ->
          make_plan o.c o.fault_list subset)
    in
    o.plans <- p :: take (max_cached_plans - 1) o.plans;
    p

(* --- Queries --------------------------------------------------------------

   Every dispatch through the oracle is a span named for the phase
   ("analysis" / "cofactor_pair"), categorised by engine, plus per-engine
   query counters — full-vector, subset and cofactor queries separately so
   the PREPARE savings are visible in a metrics snapshot — and per-engine
   latency histograms, so a tail regression in one engine's queries is
   visible even when the totals (and hence the mean) barely move. *)

let check_width o x name =
  if Array.length x <> Array.length (Netlist.inputs o.c) then
    invalid_arg (name ^ ": weight vector width mismatch")

let probs o x =
  check_width o x "Oracle.probs";
  Rt_obs.incr o.cq_run;
  Rt_obs.with_span_h ~cat:o.kind "analysis" o.h_run (fun () -> o.run x)

let probs_plan o p x =
  check_width o x "Oracle.probs_plan";
  if p.owner != o.fault_list then invalid_arg "Oracle.probs_plan: plan from another oracle";
  Rt_obs.incr o.cq_subset;
  Rt_obs.with_span_h ~cat:o.kind "analysis" o.h_subset (fun () -> o.run_subset p x)

let probs_subset o subset x =
  check_width o x "Oracle.probs_subset";
  Rt_obs.incr o.cq_subset;
  let p = plan o subset in
  Rt_obs.with_span_h ~cat:o.kind "analysis" o.h_subset (fun () -> o.run_subset p x)

(* The engine-independent fallback: two independent subset evaluations on
   a private copy of [x] — exception-safe by construction (the caller's
   vector is never written). *)
let generic_pair o p ~input x =
  let x' = Array.copy x in
  x'.(input) <- 0.0;
  let pf0 = o.run_subset p x' in
  x'.(input) <- 1.0;
  let pf1 = o.run_subset p x' in
  (pf0, pf1)

let cofactor_pair o p ~input ~x =
  check_width o x "Oracle.cofactor_pair";
  if input < 0 || input >= Array.length x then
    invalid_arg "Oracle.cofactor_pair: input index out of range";
  if p.owner != o.fault_list then
    invalid_arg "Oracle.cofactor_pair: plan from another oracle";
  Rt_obs.incr o.cq_cofactor;
  Rt_obs.with_span_h ~cat:o.kind "cofactor_pair" o.h_cofactor (fun () ->
      match o.cofactor with
      | Some f ->
        Rt_obs.incr c_cof_incremental;
        f p ~input x
      | None ->
        Rt_obs.incr c_cof_full;
        generic_pair o p ~input x)

let subset p = p.key
let selected p = p.sel
let obs_mask p = p.obs_mask
let sp_mask p = p.sp_mask

let faults o = o.fault_list
let circuit o = o.c
let kind o = o.kind
let describe o = o.label
let exact_mask o = Array.copy o.exact
let proven_redundant o = Array.copy o.redundant
