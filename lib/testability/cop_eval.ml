(* COP evaluation: the activation x observability estimate, in three
   forms — full sweep, plan-restricted sweep, and an incremental state
   that caches a base point's signal probabilities / observabilities and
   re-evaluates only a flipped input's damage cone.

   Bit-identity invariant (what makes the incremental path safe for the
   optimizer): after any [eval] / [cofactor_pair], the returned vector is
   bit-for-bit what [probs_subset] computes from scratch at the same
   point.  The argument: a masked node outside fanout*(i) has no path
   from input i (sp_mask is fanin-closed, so any such path would be
   entirely masked), hence its cached value already equals the from-
   scratch value; a node inside the cone is recomputed in ascending
   (topological, therefore level) order with exactly the sweep's
   arithmetic ([Gate.prob] over the same fanin reads).  The observability
   side re-runs [Observability.cop_node] in descending order over the
   nodes whose readers changed (observability or side-pin sensitization),
   seeded conservatively — extra recomputation reproduces the same
   floats, so conservatism costs time, never exactness. *)

module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module Parallel = Rt_util.Parallel

let fault_prob c ~sp ~obs f =
  let src = Fault.source f c in
  let act = if f.Fault.stuck then 1.0 -. sp.(src) else sp.(src) in
  match f.Fault.site with
  | Fault.Stem n -> act *. obs.(n)
  | Fault.Branch (g, k) -> act *. Observability.pin_observability c ~node_probs:sp ~obs g k

let fill ~jobs c ~sp ~obs faults out =
  let nf = Array.length faults in
  (* The per-fault work is sub-microsecond: only worth domains on large
     universes (and never more domains than cores — see Parallel.region). *)
  Parallel.region ~label:"cop.fill" ~min_per_chunk:1024 ~seq_below:4096 ~jobs ~n:nf
    (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        out.(i) <- fault_prob c ~sp ~obs faults.(i)
      done)

let probs ?(jobs = 1) c faults x =
  let sp = Signal_prob.independence c x in
  let obs = Observability.cop c ~node_probs:sp in
  let out = Array.make (Array.length faults) 0.0 in
  fill ~jobs c ~sp ~obs faults out;
  out

let probs_subset ?(jobs = 1) c plan x =
  let sp = Signal_prob.independence_subset c ~mask:(Oracle.sp_mask plan) x in
  let obs = Observability.cop_subset c ~mask:(Oracle.obs_mask plan) ~node_probs:sp in
  let out = Array.make (Array.length (Oracle.selected plan)) 0.0 in
  fill ~jobs c ~sp ~obs (Oracle.selected plan) out;
  out

(* --- Incremental state ---------------------------------------------------- *)

type state = {
  c : Netlist.t;
  jobs : int;
  mutable plan : Oracle.plan option;
  mutable base_x : float array;  (* [||] until the first rebuild *)
  mutable sp : float array;
  mutable obs : float array;
  cones : (int, int array * int array) Hashtbl.t;
      (* input index -> (sp-dirty nodes ascending, obs-dirty nodes
         ascending); depends only on the plan's masks, so reset on plan
         change and kept across base-point moves *)
  sp_dirty_scratch : bool array;
  mutable save_sp : float array;  (* cone-sized undo buffers *)
  mutable save_obs : float array;
}

let create ?(jobs = 1) c =
  { c;
    jobs;
    plan = None;
    base_x = [||];
    sp = [||];
    obs = [||];
    cones = Hashtbl.create 16;
    sp_dirty_scratch = Array.make (Netlist.size c) false;
    save_sp = [||];
    save_obs = [||] }

let c_rebuilds = Rt_obs.counter "cop.incremental.rebuilds"
let c_commits = Rt_obs.counter "cop.incremental.commits"
let c_patched = Rt_obs.counter "cop.incremental.nodes_patched"

let rebuild st plan x =
  Rt_obs.incr c_rebuilds;
  st.sp <- Signal_prob.independence_subset st.c ~mask:(Oracle.sp_mask plan) x;
  st.obs <- Observability.cop_subset st.c ~mask:(Oracle.obs_mask plan) ~node_probs:st.sp;
  st.base_x <- Array.copy x

(* The damage cone of input [i] under the plan's masks.  sp side: the
   masked transitive fanout of the input node (ascending = level order).
   obs side: a node's observability must be recomputed when a reader's
   observability changed or a reader's side-pin sensitization changed —
   i.e. when some reader has any sp-dirty fanin.  One descending sweep
   decides both (readers have larger ids, so they are final when their
   fanins are visited). *)
let compute_cone st plan input =
  let c = st.c in
  let n = Netlist.size c in
  let root = (Netlist.inputs c).(input) in
  let sp_dirty = Rt_circuit.Cone.fanout_within c ~mask:(Oracle.sp_mask plan) root in
  if Array.length sp_dirty = 0 then ([||], [||])
  else begin
    let spd = st.sp_dirty_scratch in
    Array.iter (fun g -> spd.(g) <- true) sp_dirty;
    let obs_mask = Oracle.obs_mask plan in
    let od = Array.make n false in
    let count = ref 0 in
    for g = n - 1 downto 0 do
      if obs_mask.(g)
         && Array.exists
              (fun r -> od.(r) || Array.exists (fun f -> spd.(f)) (Netlist.fanin c r))
              (Netlist.fanout c g)
      then begin
        od.(g) <- true;
        incr count
      end
    done;
    Array.iter (fun g -> spd.(g) <- false) sp_dirty;
    let obs_dirty = Array.make !count 0 in
    let k = ref 0 in
    for g = 0 to n - 1 do
      if od.(g) then begin
        obs_dirty.(!k) <- g;
        incr k
      end
    done;
    (sp_dirty, obs_dirty)
  end

let get_cone st plan input =
  match Hashtbl.find_opt st.cones input with
  | Some cone -> cone
  | None ->
    let cone = compute_cone st plan input in
    Hashtbl.add st.cones input cone;
    cone

let ensure_saves st n_sp n_obs =
  if Array.length st.save_sp < n_sp then st.save_sp <- Array.make n_sp 0.0;
  if Array.length st.save_obs < n_obs then st.save_obs <- Array.make n_obs 0.0

(* Re-evaluate the cone for the input at value [v], saving the previous
   values into the undo buffers.  sp ascending, obs descending — the same
   orders (and the same per-node arithmetic) as the full masked sweeps. *)
let apply_patch st (sp_dirty, obs_dirty) v =
  let c = st.c in
  let sp = st.sp and obs = st.obs in
  Array.iteri
    (fun k g ->
      st.save_sp.(k) <- sp.(g);
      sp.(g) <-
        (match Netlist.kind c g with
         | Gate.Input -> v  (* only the flipped input itself; inputs have no fanin *)
         | kind -> Gate.prob kind (Array.map (fun j -> sp.(j)) (Netlist.fanin c g))))
    sp_dirty;
  for k = Array.length obs_dirty - 1 downto 0 do
    let g = obs_dirty.(k) in
    st.save_obs.(k) <- obs.(g);
    obs.(g) <-
      Observability.cop_node c ~stem_rule:Observability.Complement_product ~node_probs:sp ~obs g
  done;
  Rt_obs.add c_patched (Array.length sp_dirty + Array.length obs_dirty)

let restore st (sp_dirty, obs_dirty) =
  Array.iteri (fun k g -> st.sp.(g) <- st.save_sp.(k)) sp_dirty;
  Array.iteri (fun k g -> st.obs.(g) <- st.save_obs.(k)) obs_dirty

(* Bring the cached base point to (plan, x).  Same plan and a single
   moved coordinate — the optimizer's per-coordinate update — commits
   that coordinate's cone patch in place; anything else rebuilds. *)
let sync st plan x =
  let same_plan = match st.plan with Some p -> p == plan | None -> false in
  if not same_plan then begin
    st.plan <- Some plan;
    Hashtbl.reset st.cones;
    rebuild st plan x
  end
  else begin
    let first = ref (-1) and ndiff = ref 0 in
    Array.iteri
      (fun i v ->
        if v <> st.base_x.(i) then begin
          if !ndiff = 0 then first := i;
          incr ndiff
        end)
      x;
    if !ndiff = 1 then begin
      let i = !first in
      let ((sp_d, obs_d) as cone) = get_cone st plan i in
      ensure_saves st (Array.length sp_d) (Array.length obs_d);
      apply_patch st cone x.(i);
      st.base_x.(i) <- x.(i);
      Rt_obs.incr c_commits
    end
    else if !ndiff > 1 then rebuild st plan x
  end

let eval st plan x =
  sync st plan x;
  let sel = Oracle.selected plan in
  let out = Array.make (Array.length sel) 0.0 in
  fill ~jobs:st.jobs st.c ~sp:st.sp ~obs:st.obs sel out;
  out

let cofactor_pair st plan ~input x =
  sync st plan x;
  let ((sp_d, obs_d) as cone) = get_cone st plan input in
  ensure_saves st (Array.length sp_d) (Array.length obs_d);
  let sel = Oracle.selected plan in
  let nf = Array.length sel in
  let eval_patched v =
    apply_patch st cone v;
    Fun.protect
      ~finally:(fun () -> restore st cone)
      (fun () ->
        let out = Array.make nf 0.0 in
        fill ~jobs:st.jobs st.c ~sp:st.sp ~obs:st.obs sel out;
        out)
  in
  let pf0 = eval_patched 0.0 in
  let pf1 = eval_patched 1.0 in
  (pf0, pf1)
