module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

let independence c x =
  if Array.length x <> Array.length (Netlist.inputs c) then
    invalid_arg "Signal_prob.independence: weight vector width mismatch";
  let n = Netlist.size c in
  let p = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match Netlist.kind c i with
    | Gate.Input -> p.(i) <- x.(Netlist.input_index c i)
    | k ->
      let args = Array.map (fun j -> p.(j)) (Netlist.fanin c i) in
      p.(i) <- Gate.prob k args
  done;
  p

let independence_subset c ~mask x =
  if Array.length x <> Array.length (Netlist.inputs c) then
    invalid_arg "Signal_prob.independence_subset: weight vector width mismatch";
  let n = Netlist.size c in
  if Array.length mask <> n then invalid_arg "Signal_prob.independence_subset: mask size";
  let p = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if mask.(i) then
      match Netlist.kind c i with
      | Gate.Input -> p.(i) <- x.(Netlist.input_index c i)
      | k ->
        let args = Array.map (fun j -> p.(j)) (Netlist.fanin c i) in
        p.(i) <- Gate.prob k args
  done;
  p

let conditioning_set ?(max_vars = 8) c =
  if max_vars < 0 || max_vars > 16 then invalid_arg "Signal_prob.conditioning_set";
  Netlist.inputs c |> Array.to_list
  |> List.filter (fun i -> Array.length (Netlist.fanout c i) >= 2)
  |> List.sort (fun a b ->
         compare (Array.length (Netlist.fanout c b)) (Array.length (Netlist.fanout c a)))
  |> List.filteri (fun k _ -> k < max_vars)
  |> Array.of_list

(* Shannon expansion over a set of inputs: average the independence sweep
   over all assignments, weighted by the assignment probability. *)
let conditioned ?max_vars c x =
  let set = conditioning_set ?max_vars c in
  if Array.length set = 0 then independence c x
  else begin
    let k = Array.length set in
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    let acc = Array.make (Netlist.size c) 0.0 in
    let x' = Array.copy x in
    for a = 0 to (1 lsl k) - 1 do
      let weight = ref 1.0 in
      Array.iteri
        (fun j pos ->
          if (a lsr j) land 1 = 1 then begin
            x'.(pos) <- 1.0;
            weight := !weight *. x.(pos)
          end
          else begin
            x'.(pos) <- 0.0;
            weight := !weight *. (1.0 -. x.(pos))
          end)
        positions;
      if !weight > 0.0 then begin
        let p = independence c x' in
        Array.iteri (fun n v -> acc.(n) <- acc.(n) +. (!weight *. v)) p
      end
    done;
    acc
  end

let exact ?node_limit c x = Rt_bdd.Bdd_circuit.signal_probs ?node_limit c x

let max_error c x =
  match exact c x with
  | None -> None
  | Some ex ->
    let est = independence c x in
    let worst = ref 0.0 in
    Array.iteri
      (fun i e ->
        let d = Float.abs (e -. est.(i)) in
        if d > !worst then worst := d)
      ex;
    Some !worst
