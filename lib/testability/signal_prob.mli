(** Signal probability computation.

    Given input probabilities [X], the signal probability of a node is the
    chance it evaluates true.  Exact computation is #P-hard in general
    (Parker-McCluskey); this module offers the fast independence estimator
    (exact on fanout-free circuits) and the exact BDD engine for circuits
    that fit. *)

val independence : Rt_circuit.Netlist.t -> float array -> float array
(** One forward sweep applying each gate's arithmetical embedding as if all
    fanins were independent — the classical COP/PREDICT-style estimate.
    Exact when no reconvergent fanout exists. *)

val independence_subset :
  Rt_circuit.Netlist.t -> mask:bool array -> float array -> float array
(** {!independence} restricted to the nodes where [mask] is true; other
    entries stay 0.  [mask] must be fanin-closed (every fanin of a masked
    gate is masked), as produced by {!Detect}'s subset planner — masked
    values then equal the full sweep's exactly, at the cost of only the
    masked cone. *)

val conditioning_set : ?max_vars:int -> Rt_circuit.Netlist.t -> Rt_circuit.Netlist.node array
(** The inputs with the largest fanout (at least 2), up to [max_vars]
    (default 8) — the reconvergence sources most worth conditioning on. *)

val conditioned : ?max_vars:int -> Rt_circuit.Netlist.t -> float array -> float array
(** PREDICT-style estimate ([ABS86], cited by the paper): Shannon-expand
    over the {!conditioning_set} — for every assignment of those inputs run
    the independence sweep with them pinned and average with the assignment
    probabilities.  Exact when all reconvergence passes through the
    conditioned inputs; never worse-founded than {!independence}.  Cost is
    [2^|set|] sweeps. *)

val exact : ?node_limit:int -> Rt_circuit.Netlist.t -> float array -> float array option
(** Parker-McCluskey via BDDs; [None] when the circuit exceeds the node
    limit. *)

val max_error : Rt_circuit.Netlist.t -> float array -> float option
(** Largest absolute difference between {!independence} and {!exact} over
    all nodes, when the exact engine fits — a measure of how much
    reconvergence distorts the estimate on this circuit. *)
