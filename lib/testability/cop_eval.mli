(** COP detection-probability evaluation: full sweeps, plan-restricted
    sweeps, and an incremental state for cofactor queries.

    The incremental {!state} caches the signal probabilities and
    observabilities of a base point [x] under a plan's masks.  A query at
    [x] with input [i] flipped re-evaluates only the {e damage cone} of
    [i]: the masked transitive fanout of the input node (signal side) and
    the nodes whose readers' observability or side-pin sensitization that
    touches (observability side).  Patches are undone after each query, so
    the cache is always consistent with [base_x]; when the caller's [x]
    itself moves by one coordinate — the optimizer's per-coordinate sweep —
    the patch is committed instead of rebuilt.

    Every result is bit-identical to the corresponding from-scratch
    {!probs_subset} call: nodes outside the cone cannot depend on the
    flipped input (the masks are closure-consistent), and nodes inside are
    recomputed in the same order with the same arithmetic. *)

val fault_prob :
  Rt_circuit.Netlist.t ->
  sp:float array ->
  obs:float array ->
  Rt_fault.Fault.t ->
  float
(** Activation x observability for one fault, given sweep results. *)

val fill :
  jobs:int ->
  Rt_circuit.Netlist.t ->
  sp:float array ->
  obs:float array ->
  Rt_fault.Fault.t array ->
  float array ->
  unit
(** Fill [out.(i) <- fault_prob faults.(i)] for all faults, sharded across
    [jobs] domains for large fault arrays.  Bit-identical for any [jobs]. *)

val probs : ?jobs:int -> Rt_circuit.Netlist.t -> Rt_fault.Fault.t array -> float array -> float array
(** Full-circuit COP estimate of [p_f(X)] per fault. *)

val probs_subset : ?jobs:int -> Rt_circuit.Netlist.t -> Oracle.plan -> float array -> float array
(** Plan-restricted sweep: masked signal-probability and observability
    sweeps, then the selected faults only. *)

type state
(** Mutable incremental-evaluation state for one circuit.  Not
    thread-safe; create one per oracle. *)

val create : ?jobs:int -> Rt_circuit.Netlist.t -> state

val eval : state -> Oracle.plan -> float array -> float array
(** [eval st plan x]: the plan's selected detection probabilities at [x],
    reusing the cached base point when [x] differs from it in at most one
    coordinate (commit-patch) and rebuilding otherwise. *)

val cofactor_pair :
  state -> Oracle.plan -> input:int -> float array -> float array * float array
(** [(p_f(X,0|input), p_f(X,1|input))] for the plan's faults: sync the base
    point to [x], then patch the input's damage cone to 0.0 and 1.0 in
    turn, restoring the cache after each.  Does not mutate [x]. *)
