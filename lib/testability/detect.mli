(** Fault detection probability oracles — the paper's ANALYSIS step.

    The optimizer only needs a function [X -> p_f(X)] for the fault list;
    the paper uses PROTEST and remarks that "with slight modifications
    PREDICT or STAFAN will presumably work as well".  This module offers
    four interchangeable oracles behind one interface:

    - [Cop]: analytic activation x observability estimate (fast; the
      default ANALYSIS engine, playing PROTEST's role);
    - [Conditioned]: COP Shannon-expanded over the worst reconvergence
      sources (PREDICT's role);
    - [Bdd_exact]: exact detection probabilities from per-fault boolean
      difference BDDs built once and re-evaluated per [X] in linear time;
      falls back to [Cop] for faults whose BDD exceeds the node limit;
    - [Stafan]: counting-based estimate from fresh weighted simulation;
    - [Monte_carlo]: direct fault-simulation estimate.

    Every engine is constructed as a value of the engine-agnostic
    {!Oracle.t} protocol ([oracle] below is an alias), so the protocol's
    query surface — {!Oracle.plan}, {!Oracle.probs_plan},
    {!Oracle.cofactor_pair} — is available on any oracle built here.  Each
    constructor registers the engine's fused cofactor implementation when
    it has one (incremental damage-cone re-evaluation for COP and serial
    conditioned COP, a paired traversal for the exact BDDs, a recorded and
    replayed pattern base for STAFAN / Monte-Carlo). *)

type engine =
  | Cop
  | Conditioned of { max_vars : int }
      (** PREDICT-style ([ABS86]): the COP estimate Shannon-expanded over
          the [max_vars] highest-fanout inputs (cost [2^max_vars] COP
          sweeps per call). *)
  | Bdd_exact of { node_limit : int }
  | Stafan of { n_patterns : int; seed : int }
  | Monte_carlo of { n_patterns : int; seed : int }

type oracle = Oracle.t

val make : ?jobs:int -> engine -> Rt_circuit.Netlist.t -> Rt_fault.Fault.t array -> oracle
(** Performs all per-circuit precomputation (e.g. BDD construction) so that
    repeated {!probs} calls are cheap.  [jobs] (default: the [OPTPROB_JOBS]
    environment variable, else 1) shards per-fault and per-assignment work
    across that many domains in the COP, conditioned and Monte-Carlo
    engines; [jobs = 1] is bit-identical to the serial implementation. *)

val probs : oracle -> float array -> float array
(** [probs o x] is [p_f(X)] for each fault, in fault-array order. *)

val probs_subset : oracle -> int array -> float array -> float array
(** [probs_subset o subset x] is [p_f(X)] for [subset]'s faults only —
    element [j] corresponds to fault index [subset.(j)] — and equals
    gathering those entries from {!probs} while doing only the subset's
    share of the work: COP/conditioned restrict their signal-probability
    and observability sweeps to the union of the selected faults' cones,
    the exact engine evaluates only the selected detection BDDs (skipping
    whole generations none of them landed in), STAFAN restricts its
    observability sweep, and Monte-Carlo simulates only the selected
    faults.  This is the paper's PREPARE step: OPTIMIZE needs the two
    cofactor probabilities of the [nf] {e hardest} faults, never the full
    universe.  The per-subset cone masks are cached keyed on the physical
    identity of [subset] — reuse one index array across calls (as
    {!Rt_optprob.Optimize.run} does per sweep) to amortise planning. *)

val faults : oracle -> Rt_fault.Fault.t array
val circuit : oracle -> Rt_circuit.Netlist.t
val describe : oracle -> string

val exact_mask : oracle -> bool array
(** Per fault: whether the value returned by {!probs} is exact. *)

val proven_redundant : oracle -> bool array
(** Per fault: an exact engine proved the fault undetectable (its boolean
    difference is the zero function).  Estimators return all-false. *)

val injection : Rt_fault.Fault.t -> Rt_bdd.Bdd_circuit.injection
(** The BDD-level injection corresponding to a stuck-at fault. *)
