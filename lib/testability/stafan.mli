(** STAFAN-style statistical fault analysis (Jain & Agrawal 1984).

    Instead of analytic propagation, controllabilities and sensitization
    probabilities are {e counted} during ordinary logic simulation; the
    paper names STAFAN as an alternative ANALYSIS provider for the
    optimizer, and this module implements that role. *)

type counts = {
  n_patterns : int;
  ones : int array;  (** per node: patterns with value 1 *)
  sens : int array array;
      (** [sens.(g).(k)]: patterns where gate [g]'s output is sensitive to
          its pin [k] (empty array for inputs/constants) *)
}

val count :
  Rt_circuit.Netlist.t -> source:Rt_sim.Pattern.source -> n_patterns:int -> counts

val controllability : counts -> Rt_circuit.Netlist.node -> float
(** Measured one-probability of a node. *)

val observability :
  ?stem_rule:Observability.stem_rule -> Rt_circuit.Netlist.t -> counts -> float array
(** Backward observability sweep driven by the measured sensitization
    ratios. *)

val observability_subset :
  ?stem_rule:Observability.stem_rule ->
  Rt_circuit.Netlist.t ->
  mask:bool array ->
  counts ->
  float array
(** {!observability} restricted to a fanout-closed node mask (readers of
    masked nodes are masked); masked values equal the full sweep's. *)

val detection_probs :
  ?stem_rule:Observability.stem_rule ->
  Rt_circuit.Netlist.t ->
  counts ->
  Rt_fault.Fault.t array ->
  float array
(** Per-fault detection probability estimate: activation x observability,
    both from counts. *)

val detection_probs_subset :
  ?stem_rule:Observability.stem_rule ->
  Rt_circuit.Netlist.t ->
  mask:bool array ->
  counts ->
  Rt_fault.Fault.t array ->
  float array
(** As {!detection_probs} for an already-gathered fault subset, with the
    observability sweep restricted to [mask] (the union of the subset's
    fanout cones). *)
